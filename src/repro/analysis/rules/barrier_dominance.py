"""barrier-dominance: WORM barriers must dominate page write-backs.

Paper invariant (Section IV): *"data page writes wait until their
corresponding NEW_TUPLE and/or STAMP_TRANS records have reached the WORM
server."*  In this tree the ordering is carried by three mechanisms, and
the rule checks the shape of each:

1. ``pager.write_page(pgno, raw, hooks_done=True)`` is phase 2 of a
   batched write-back; it is only legal after phase 1
   (``emit_write_hooks``) emitted the batch's compliance records — the
   first page's pwrite barrier then drains them ahead of any physical
   write.  A ``hooks_done=True`` call with no dominating
   ``emit_write_hooks`` (or explicit barrier) in the same function means
   a page can reach disk with its NEW_TUPLE records still buffered.
2. The body of a function *named* ``write_page`` must run its
   ``pwrite_barriers`` (a ``for`` loop over them, or a direct
   ``barrier()``/``_page_barrier()`` call) before the physical
   ``.write(...)``/``.seek(...)`` on the backing file.
3. Any call to ``*.write_raw(...)`` bypasses the hook/barrier seam
   entirely.  Legitimate bypasses (the adversary simulation, the pager's
   own initialisation) must carry a justified suppression.

Dominance is approximated lexically (see :func:`repro.analysis.core.before`)
but resolved **interprocedurally** since lint v2: a call to a helper
that (within the call-graph depth bound) runs ``emit_write_hooks`` or a
barrier counts as a dominator, so hoisting phase 1 into a wrapper no
longer trips the rule — and a wrapper that merely *looks* like it
synchronises, but never reaches a barrier, still does.
"""

from __future__ import annotations

import ast
from typing import List

from ..core import (LintFinding, ModuleUnit, Project, Rule, before,
                    dotted_name, iter_functions, ordered_calls,
                    register_rule)

#: callee attribute names that count as an explicit durability barrier
_BARRIER_ATTRS = {"barrier", "_page_barrier", "sync", "sync_all"}


def _is_truthy_const(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and bool(node.value)


def _callee_attr(call: ast.Call) -> str:
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _barrier_loops(fn: ast.AST) -> List[ast.For]:
    """``for b in <...>.pwrite_barriers: b(...)`` loops under ``fn``."""
    loops = []
    for node in ast.walk(fn):
        if not isinstance(node, ast.For):
            continue
        iter_name = dotted_name(node.iter) or ""
        if not iter_name.endswith("pwrite_barriers"):
            continue
        if not isinstance(node.target, ast.Name):
            continue
        target = node.target.id
        for inner in ast.walk(node):
            if isinstance(inner, ast.Call) and \
                    isinstance(inner.func, ast.Name) and \
                    inner.func.id == target:
                loops.append(node)
                break
    return loops


@register_rule
class BarrierDominanceRule(Rule):
    """Page write-backs must be dominated by a WORM durability barrier."""

    name = "barrier-dominance"
    description = ("pager/buffer write-back sites must be dominated by a "
                   "WORM barrier or phase-1 hook emission")
    invariant = ("Section IV: data page writes wait until their NEW_TUPLE/"
                 "STAMP_TRANS records have reached the WORM server")

    def check_module(self, unit: ModuleUnit,
                     project: Project) -> List[LintFinding]:
        findings: List[LintFinding] = []
        graph = project.callgraph()
        for fn in iter_functions(unit.tree):
            calls = ordered_calls(fn)
            caller = graph.info_for(fn)
            emit_or_barrier = [
                call for call in calls
                if _callee_attr(call) == "emit_write_hooks" or
                _callee_attr(call) in _BARRIER_ATTRS or
                # helper-wrapped dominator: the wrapper reaches a
                # barrier within the depth bound (write-back sites
                # themselves never count — a write is not a barrier)
                (_callee_attr(call) not in ("write_page", "write_raw")
                 and graph.call_reaches_attr(
                     call, caller,
                     _BARRIER_ATTRS | {"emit_write_hooks"}))]
            for call in calls:
                attr = _callee_attr(call)
                if attr == "write_page":
                    hooks_done = any(
                        kw.arg == "hooks_done" and
                        _is_truthy_const(kw.value)
                        for kw in call.keywords)
                    if hooks_done and not any(
                            before(dom, call) for dom in emit_or_barrier):
                        findings.append(LintFinding(
                            self.name, unit.path, call.lineno,
                            call.col_offset,
                            "write_page(hooks_done=True) with no "
                            "dominating emit_write_hooks/barrier in "
                            f"'{fn.name}' — the page could reach disk "
                            "before its compliance records reach WORM"))
                elif attr == "write_raw":
                    receiver = dotted_name(call.func.value) \
                        if isinstance(call.func, ast.Attribute) else None
                    findings.append(LintFinding(
                        self.name, unit.path, call.lineno,
                        call.col_offset,
                        f"{receiver or '<expr>'}.write_raw bypasses the "
                        "pwrite hook/barrier seam — compliance records "
                        "are never emitted for these bytes"))
            if fn.name == "write_page":
                findings.extend(
                    self._check_write_page_body(unit, fn, graph, caller))
        return findings

    def _check_write_page_body(self, unit: ModuleUnit,
                               fn: ast.FunctionDef, graph: object,
                               caller: object) -> List[LintFinding]:
        physical = [
            call for call in ordered_calls(fn)
            if _callee_attr(call) in ("write", "seek") and
            isinstance(call.func, ast.Attribute) and
            (dotted_name(call.func.value) or "").endswith("_file")]
        if not physical:
            return []
        barrier_points: List[ast.AST] = list(_barrier_loops(fn))
        barrier_points.extend(
            call for call in ordered_calls(fn)
            if _callee_attr(call) in _BARRIER_ATTRS or
            (_callee_attr(call) not in ("write", "seek", "write_page",
                                        "write_raw") and
             graph.call_reaches_attr(  # type: ignore[attr-defined]
                 call, caller, _BARRIER_ATTRS)))
        first_write = physical[0]
        if any(before(point, first_write) for point in barrier_points):
            return []
        return [LintFinding(
            self.name, unit.path, first_write.lineno,
            first_write.col_offset,
            f"'{fn.name}' writes the backing file without first running "
            "its pwrite_barriers — buffered compliance records could "
            "ride past the page's physical write")]
