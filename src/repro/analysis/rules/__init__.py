"""Built-in compliance rules; importing this package registers them."""

from . import (barrier_dominance, exception_safety, executor_confinement,
               fsync_discipline, lock_discipline, record_exhaustiveness,
               replay_determinism, worm_immutability)

__all__ = ["barrier_dominance", "exception_safety",
           "executor_confinement", "fsync_discipline", "lock_discipline",
           "record_exhaustiveness", "replay_determinism",
           "worm_immutability"]
