"""Built-in compliance rules; importing this package registers them."""

from . import (barrier_dominance, lock_discipline, record_exhaustiveness,
               replay_determinism, worm_immutability)

__all__ = ["barrier_dominance", "lock_discipline", "record_exhaustiveness",
           "replay_determinism", "worm_immutability"]
