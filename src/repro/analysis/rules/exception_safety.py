"""exception-safe-release: acquired resources must survive exceptions.

Invariant (DESIGN.md engine contract): the engine's resources — open
transactions and open file handles — are *owned*: a transaction left
dangling by an exception pins its locks and, after the PR 7 halt-path
fix, can wedge the whole engine; a leaked file handle keeps a WORM or
WAL fd alive past ``close()`` and breaks the crash simulation's
"everything buffered is lost" model.

A function in a **strict** unit (anything under the ``repro`` package,
or a module opted in with ``# repro-lint: strict-release``) that binds
an acquisition to a local name::

    txn = db.begin(...)          # transaction handle
    handle = open(path, "wb")    # file handle

must do one of:

* acquire inside a ``with`` item (``with open(p) as f:``);
* clean the name up in a ``try`` statement's ``finally`` block or an
  ``except`` handler (the engine's ``commit``-then-``abort``-on-error
  idiom), where "clean up" is a call that takes the name as receiver or
  argument and is — or transitively reaches, via the call graph — a
  ``close``/``abort``/``commit``/``rollback``/``release`` family call;
* let the resource escape ownership: return/yield it, or store it into
  an attribute/subscript (the new owner's lifecycle rules apply there).

Straight-line ``txn = begin(); ...; commit(txn)`` with no protection at
all is exactly the shape this rule exists to flag: any raise between
the two lines leaks the transaction.  Test and demo scripts on
throwaway databases are out of scope unless they opt in.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set

from ..callgraph import CallGraph, FunctionInfo
from ..core import (LintFinding, ModuleUnit, Project, Rule, dotted_name,
                    iter_functions, register_rule)

#: callee names that end a resource's life (directly or via a wrapper)
_CLEANUP_ATTRS = {"close", "abort", "commit", "rollback", "release",
                  "release_all", "stop"}


def _acquisition_kind(call: ast.Call) -> Optional[str]:
    """'file handle' for ``open(...)``, 'transaction' for ``*.begin()``."""
    func = call.func
    if isinstance(func, ast.Name) and func.id == "open":
        return "file handle"
    if isinstance(func, ast.Attribute) and func.attr == "begin":
        return "transaction"
    return None


def _is_cleanup_call(call: ast.Call, name: str, graph: CallGraph,
                     caller: Optional[FunctionInfo]) -> bool:
    """Whether ``call`` disposes of the resource bound to ``name``."""
    func = call.func
    involved = any(isinstance(arg, ast.Name) and arg.id == name
                   for arg in list(call.args) +
                   [kw.value for kw in call.keywords])
    if isinstance(func, ast.Attribute):
        receiver = dotted_name(func.value)
        if receiver == name and func.attr in _CLEANUP_ATTRS:
            return True  # txn.abort() / handle.close()
        if involved and func.attr in _CLEANUP_ATTRS:
            return True  # db.abort(txn)
    if involved and graph.call_reaches_attr(call, caller, _CLEANUP_ATTRS):
        return True  # self._cleanup(txn) -> ... -> abort
    return False


def _protected_names(fn: ast.AST, graph: CallGraph,
                     caller: Optional[FunctionInfo]) -> Set[str]:
    """Names cleaned up in a ``finally`` block or ``except`` handler."""
    out: Set[str] = set()
    names = {node.id for node in ast.walk(fn)
             if isinstance(node, ast.Name)}
    for node in ast.walk(fn):
        if not isinstance(node, ast.Try):
            continue
        scopes: List[ast.stmt] = list(node.finalbody)
        for handler in node.handlers:
            scopes.extend(handler.body)
        for stmt in scopes:
            for inner in ast.walk(stmt):
                if not isinstance(inner, ast.Call):
                    continue
                for name in names:
                    if name not in out and \
                            _is_cleanup_call(inner, name, graph, caller):
                        out.add(name)
    return out


def _escaping_names(fn: ast.AST) -> Set[str]:
    """Names whose resource leaves the function's ownership."""
    out: Set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)) and \
                node.value is not None:
            for inner in ast.walk(node.value):
                if isinstance(inner, ast.Name):
                    out.add(inner.id)
        elif isinstance(node, ast.Assign) and \
                isinstance(node.value, ast.Name):
            for target in node.targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    out.add(node.value.id)
    return out


def _with_item_call_ids(fn: ast.AST) -> Set[int]:
    out: Set[int] = set()
    for node in ast.walk(fn):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                for inner in ast.walk(item.context_expr):
                    if isinstance(inner, ast.Call):
                        out.add(id(inner))
    return out


@register_rule
class ExceptionSafeReleaseRule(Rule):
    """Resource acquisition with no with/try-finally protection."""

    name = "exception-safe-release"
    description = ("txn/file acquisitions must sit in a with block or "
                   "have cleanup in finally/except")
    invariant = ("engine contract: a raise between acquire and release "
                 "must not leak the transaction's locks or the handle")

    def check_module(self, unit: ModuleUnit,
                     project: Project) -> List[LintFinding]:
        if not (unit.in_repro_package() or unit.strict_release):
            return []
        findings: List[LintFinding] = []
        graph = project.callgraph()
        for fn in iter_functions(unit.tree):
            caller = graph.info_for(fn)
            with_calls = _with_item_call_ids(fn)
            protected = _protected_names(fn, graph, caller)
            escaping = _escaping_names(fn)
            for node in ast.walk(fn):
                if not (isinstance(node, ast.Assign) and
                        len(node.targets) == 1 and
                        isinstance(node.targets[0], ast.Name) and
                        isinstance(node.value, ast.Call)):
                    continue
                kind = _acquisition_kind(node.value)
                if kind is None or id(node.value) in with_calls:
                    continue
                name = node.targets[0].id
                if name in protected or name in escaping:
                    continue
                findings.append(LintFinding(
                    self.name, unit.path, node.value.lineno,
                    node.value.col_offset,
                    f"'{fn.name}' binds a {kind} to {name!r} with no "
                    "with-block, finally/except cleanup, or ownership "
                    "escape — an exception on the next line leaks it"))
        return findings
