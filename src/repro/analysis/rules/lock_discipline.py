"""lock-discipline: acquired locks must be released on every exit.

Invariant (strict two-phase locking, DESIGN.md): every lock acquired via
the lock table is owned by a transaction and released *exactly once*, by
``release_all`` at commit/abort.  A code path that acquires a lock and
can leave without a guaranteed release wedges the resource forever — in
this single-threaded reproduction that surfaces as a permanent
:class:`~repro.common.errors.LockConflictError` for every later
transaction touching the resource.

A function that calls ``<something lock-like>.acquire(...)`` passes when
one of these holds:

* it takes the transaction as a parameter (``txn``/``transaction`` name
  or a ``Transaction`` annotation) — the strict-2PL contract: the lock's
  lifetime belongs to the transaction, and the transaction manager's
  commit/abort paths (which this rule also checks) release it;
* it calls ``release_all`` inside a ``finally`` block; or
* it calls ``release_all`` with no ``return``/``raise`` lexically
  between the first ``acquire`` and the last ``release_all`` (the
  straight-line pairing; anything branchier needs the ``finally`` form).

Receivers count as lock-like when their dotted name contains ``lock``
(``self.locks``, ``locks``, ``lock_table``, …); ``threading`` primitives
used as context managers (``with lock:``) never reach ``.acquire`` here.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from ..core import (LintFinding, ModuleUnit, Project, Rule, dotted_name,
                    iter_functions, register_rule)

_TXN_PARAM_NAMES = {"txn", "transaction"}


def _lock_receiver(call: ast.Call) -> Optional[str]:
    func = call.func
    if not isinstance(func, ast.Attribute) or func.attr != "acquire":
        return None
    receiver = dotted_name(func.value)
    if receiver is not None and "lock" in receiver.lower():
        return receiver
    return None


def _takes_transaction(fn: ast.FunctionDef) -> bool:
    args = list(fn.args.posonlyargs) + list(fn.args.args) + \
        list(fn.args.kwonlyargs)
    for arg in args:
        if arg.arg in _TXN_PARAM_NAMES:
            return True
        annotation = arg.annotation
        if annotation is not None:
            text = dotted_name(annotation) or (
                annotation.value if isinstance(annotation, ast.Constant)
                else "")
            if isinstance(text, str) and "Transaction" in text:
                return True
    return False


def _release_in_finally(fn: ast.FunctionDef) -> bool:
    for node in ast.walk(fn):
        if isinstance(node, ast.Try):
            for stmt in node.finalbody:
                for inner in ast.walk(stmt):
                    if isinstance(inner, ast.Call) and \
                            isinstance(inner.func, ast.Attribute) and \
                            inner.func.attr == "release_all":
                        return True
    return False


@register_rule
class LockDisciplineRule(Rule):
    """acquire() without release_all guaranteed on all exits."""

    name = "lock-discipline"
    description = ("lock acquire on a path with no release_all on all "
                   "exits")
    invariant = ("strict 2PL: locks belong to a transaction and are "
                 "released exactly once at commit/abort")

    def check_module(self, unit: ModuleUnit,
                     project: Project) -> List[LintFinding]:
        findings: List[LintFinding] = []
        for fn in iter_functions(unit.tree):
            acquires = []
            releases = []
            exits = []
            for node in ast.walk(fn):
                if isinstance(node, ast.Call):
                    if _lock_receiver(node) is not None:
                        acquires.append(node)
                    elif isinstance(node.func, ast.Attribute) and \
                            node.func.attr == "release_all":
                        releases.append(node)
                elif isinstance(node, (ast.Return, ast.Raise)):
                    exits.append(node)
            if not acquires:
                continue
            if _takes_transaction(fn):
                continue  # txn-scoped: the manager releases at outcome
            if _release_in_finally(fn):
                continue
            first = min((a.lineno, a.col_offset) for a in acquires)
            if releases:
                last = max((r.lineno, r.col_offset) for r in releases)
                escaping = [node for node in exits
                            if first < (node.lineno, node.col_offset)
                            <= last]
                if not escaping:
                    continue
                node = escaping[0]
                findings.append(LintFinding(
                    self.name, unit.path, node.lineno, node.col_offset,
                    f"'{fn.name}' can exit between acquire and "
                    "release_all — move the release into a finally "
                    "block"))
            else:
                node = acquires[0]
                findings.append(LintFinding(
                    self.name, unit.path, node.lineno, node.col_offset,
                    f"'{fn.name}' acquires a lock but has no "
                    "release_all on any exit and no transaction "
                    "parameter to own the lock"))
        return findings
