"""lock-discipline: acquired locks must be released on every exit.

Invariant (strict two-phase locking, DESIGN.md): every lock acquired via
the lock table is owned by a transaction and released *exactly once*, by
``release_all`` at commit/abort.  A code path that acquires a lock and
can leave without a guaranteed release wedges the resource forever — in
this single-threaded reproduction that surfaces as a permanent
:class:`~repro.common.errors.LockConflictError` for every later
transaction touching the resource.

A function that calls ``<something lock-like>.acquire(...)`` passes when
one of these holds:

* it takes the transaction as a parameter (``txn``/``transaction`` name
  or a ``Transaction`` annotation) — the strict-2PL contract: the lock's
  lifetime belongs to the transaction, and the transaction manager's
  commit/abort paths (which this rule also checks) release it;
* it calls ``release_all`` inside a ``finally`` block; or
* it calls ``release_all`` with no ``return``/``raise`` lexically
  between the first ``acquire`` and the last ``release_all`` (the
  straight-line pairing; anything branchier needs the ``finally`` form).

Since lint v2 a *release* is resolved **interprocedurally**: a call to
a helper that (within the call-graph depth bound) runs ``release_all``
counts everywhere a literal ``release_all`` would — in the ``finally``
body and in the straight-line pairing — so wrapping the release in a
``_cleanup()`` helper no longer trips the rule, and a cleanup helper
that forgets the release still does.

Receivers count as lock-like when their dotted name contains ``lock``
(``self.locks``, ``locks``, ``lock_table``, …); ``threading`` primitives
used as context managers (``with lock:``) never reach ``.acquire`` here.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from ..callgraph import CallGraph, FunctionInfo
from ..core import (LintFinding, ModuleUnit, Project, Rule, dotted_name,
                    iter_functions, register_rule)

_TXN_PARAM_NAMES = {"txn", "transaction"}


def _lock_receiver(call: ast.Call) -> Optional[str]:
    func = call.func
    if not isinstance(func, ast.Attribute) or func.attr != "acquire":
        return None
    receiver = dotted_name(func.value)
    if receiver is not None and "lock" in receiver.lower():
        return receiver
    return None


def _takes_transaction(fn: ast.FunctionDef) -> bool:
    args = list(fn.args.posonlyargs) + list(fn.args.args) + \
        list(fn.args.kwonlyargs)
    for arg in args:
        if arg.arg in _TXN_PARAM_NAMES:
            return True
        annotation = arg.annotation
        if annotation is not None:
            text = dotted_name(annotation) or (
                annotation.value if isinstance(annotation, ast.Constant)
                else "")
            if isinstance(text, str) and "Transaction" in text:
                return True
    return False


def _is_release(call: ast.Call, graph: CallGraph,
                caller: Optional[FunctionInfo]) -> bool:
    """Literal ``release_all``, or a helper that transitively runs it.

    Acquire sites themselves never count: a wrapper that both acquires
    and releases is a *scope*, not a release of the caller's locks.
    """
    if isinstance(call.func, ast.Attribute) and \
            call.func.attr == "release_all":
        return True
    if _lock_receiver(call) is not None:
        return False
    return graph.call_reaches_attr(call, caller, {"release_all"})


def _release_in_finally(fn: ast.FunctionDef, graph: CallGraph,
                        caller: Optional[FunctionInfo]) -> bool:
    for node in ast.walk(fn):
        if isinstance(node, ast.Try):
            for stmt in node.finalbody:
                for inner in ast.walk(stmt):
                    if isinstance(inner, ast.Call) and \
                            _is_release(inner, graph, caller):
                        return True
    return False


@register_rule
class LockDisciplineRule(Rule):
    """acquire() without release_all guaranteed on all exits."""

    name = "lock-discipline"
    description = ("lock acquire on a path with no release_all on all "
                   "exits")
    invariant = ("strict 2PL: locks belong to a transaction and are "
                 "released exactly once at commit/abort")

    def check_module(self, unit: ModuleUnit,
                     project: Project) -> List[LintFinding]:
        findings: List[LintFinding] = []
        graph = project.callgraph()
        for fn in iter_functions(unit.tree):
            caller = graph.info_for(fn)
            acquires = []
            releases = []
            exits = []
            for node in ast.walk(fn):
                if isinstance(node, ast.Call):
                    if _lock_receiver(node) is not None:
                        acquires.append(node)
                    elif _is_release(node, graph, caller):
                        releases.append(node)
                elif isinstance(node, (ast.Return, ast.Raise)):
                    exits.append(node)
            if not acquires:
                continue
            if _takes_transaction(fn):
                continue  # txn-scoped: the manager releases at outcome
            if _release_in_finally(fn, graph, caller):
                continue
            first = min((a.lineno, a.col_offset) for a in acquires)
            if releases:
                last = max((r.lineno, r.col_offset) for r in releases)
                escaping = [node for node in exits
                            if first < (node.lineno, node.col_offset)
                            <= last]
                if not escaping:
                    continue
                node = escaping[0]
                findings.append(LintFinding(
                    self.name, unit.path, node.lineno, node.col_offset,
                    f"'{fn.name}' can exit between acquire and "
                    "release_all — move the release into a finally "
                    "block"))
            else:
                node = acquires[0]
                findings.append(LintFinding(
                    self.name, unit.path, node.lineno, node.col_offset,
                    f"'{fn.name}' acquires a lock but has no "
                    "release_all on any exit and no transaction "
                    "parameter to own the lock"))
        return findings
