"""worm-immutability: buffers handed to WORM must not be touched again.

Paper invariant (Section III): WORM files are *term-immutable* — "once
written, their bytes can never be changed".  The simulated
:class:`~repro.worm.server.WormServer` group-commits appends through an
in-memory buffer, so the bytes a caller passes to
``WormServer.append``/``ComplianceLog.append``/``create_file`` may sit in
that buffer until the next durability barrier.  If the caller mutates the
object afterwards (or mutates it through an alias), the "immutable" log
silently changes before it reaches the volume — the exact laundering the
threat model forbids.

The rule tracks names passed as data arguments to append-like calls on
receivers that look like a WORM server or compliance log (dotted name
containing ``worm`` or ``clog``), including one level of aliasing
(``alias = buf``), and flags any later in-function mutation of a tracked
name: mutating method calls, subscript/attribute stores, augmented
assignment, and ``del``.

Since lint v2 the append site is resolved **interprocedurally**: a call
to a helper that forwards one of its parameters into a WORM append
(within the call-graph depth bound) freezes the caller's argument at
that position, so hoisting the append into ``_log_record(buf)`` no
longer hides a later mutation of ``buf``.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Set, Tuple

from ..callgraph import CallGraph, FunctionInfo, iter_calls
from ..core import (LintFinding, ModuleUnit, Project, Rule, dotted_name,
                    iter_functions, register_rule)

#: bound on append-forwarding summary recursion
_FORWARD_DEPTH = 3

_WORM_RECEIVER_RE = re.compile(r"(?:^|[._])(worm|clog)(?:[._]|$)")
_APPEND_ATTRS = {"append", "create_file"}
_MUTATING_METHODS = {
    "append", "extend", "insert", "clear", "pop", "popitem", "remove",
    "sort", "reverse", "update", "setdefault", "add", "discard",
    "__setitem__"}


def _is_worm_append(call: ast.Call) -> bool:
    func = call.func
    if not isinstance(func, ast.Attribute) or \
            func.attr not in _APPEND_ATTRS:
        return False
    receiver = dotted_name(func.value)
    return receiver is not None and \
        bool(_WORM_RECEIVER_RE.search(receiver))


def _pos(node: ast.AST) -> tuple:
    return (node.lineno, node.col_offset)


def _param_names(node: ast.AST) -> List[str]:
    args = node.args  # type: ignore[attr-defined]
    return [a.arg for a in list(args.posonlyargs) + list(args.args)]


class _ForwardIndex:
    """Which parameters of each project function reach a WORM append."""

    def __init__(self, graph: CallGraph):
        self.graph = graph
        self._memo: Dict[Tuple[str, int], Set[str]] = {}

    def forwarded_params(self, info: FunctionInfo,
                         depth: int = _FORWARD_DEPTH) -> Set[str]:
        """Names of ``info``'s parameters that end up appended."""
        memo_key = (info.key, depth)
        cached = self._memo.get(memo_key)
        if cached is not None:
            return cached
        self._memo[memo_key] = set()  # cycle guard
        params = set(_param_names(info.node))
        out: Set[str] = set()
        for call in iter_calls(info.node):
            if _is_worm_append(call):
                for arg in list(call.args) + \
                        [kw.value for kw in call.keywords]:
                    if isinstance(arg, ast.Name) and arg.id in params:
                        out.add(arg.id)
            elif depth > 0:
                out |= params & self.frozen_args(call, info, depth - 1)
        self._memo[memo_key] = out
        return out

    def frozen_args(self, call: ast.Call,
                    caller: Optional[FunctionInfo],
                    depth: int = _FORWARD_DEPTH) -> Set[str]:
        """Caller-side names this call hands to a WORM append.

        Maps the call's ``ast.Name`` arguments onto the resolved
        target's parameters and returns those landing on an
        append-forwarded parameter.
        """
        out: Set[str] = set()
        for target in self.graph.resolve_call(call, caller):
            forwarded = self.forwarded_params(target, depth)
            if not forwarded:
                continue
            tparams = _param_names(target.node)
            # bound methods: the receiver expression consumes ``self``
            offset = 1 if (target.class_name is not None and
                           isinstance(call.func, ast.Attribute) and
                           tparams[:1] in (["self"], ["cls"])) else 0
            for i, arg in enumerate(call.args):
                pos = i + offset
                if isinstance(arg, ast.Name) and pos < len(tparams) \
                        and tparams[pos] in forwarded:
                    out.add(arg.id)
            for kw in call.keywords:
                if kw.arg in forwarded and \
                        isinstance(kw.value, ast.Name):
                    out.add(kw.value.id)
        return out


@register_rule
class WormImmutabilityRule(Rule):
    """No mutation/aliasing of buffers after a WORM append."""

    name = "worm-immutability"
    description = ("flag mutation or aliasing of buffers after they are "
                   "passed to a WORM/compliance-log append")
    invariant = ("Section III: WORM files are term-immutable; bytes "
                 "buffered for append must never change afterwards")

    def check_module(self, unit: ModuleUnit,
                     project: Project) -> List[LintFinding]:
        findings: List[LintFinding] = []
        graph = project.callgraph()
        index = _ForwardIndex(graph)
        for fn in iter_functions(unit.tree):
            findings.extend(self._check_function(unit, fn, graph, index))
        return findings

    def _check_function(self, unit: ModuleUnit, fn: ast.AST,
                        graph: CallGraph,
                        index: _ForwardIndex) -> List[LintFinding]:
        #: name -> position of the append that froze it
        frozen: Dict[str, tuple] = {}
        aliases: Dict[str, str] = {}
        findings: List[LintFinding] = []
        nodes = [node for node in ast.walk(fn)
                 if hasattr(node, "lineno")]
        nodes.sort(key=_pos)

        def canonical(name: str) -> str:
            return aliases.get(name, name)

        def frozen_at(name: str, node: ast.AST) -> bool:
            origin = frozen.get(canonical(name))
            return origin is not None and origin < _pos(node)

        def report(node: ast.AST, name: str, what: str) -> None:
            findings.append(LintFinding(
                self.name, unit.path, node.lineno, node.col_offset,
                f"{what} of {name!r} after it was passed to a WORM "
                "append — the group-commit buffer aliases the object, "
                "so the 'immutable' log would change"))

        caller = graph.info_for(fn)
        for node in nodes:
            if isinstance(node, ast.Call) and _is_worm_append(node):
                for arg in list(node.args) + \
                        [kw.value for kw in node.keywords]:
                    if isinstance(arg, ast.Name):
                        frozen.setdefault(canonical(arg.id), _pos(node))
            elif isinstance(node, ast.Call) and \
                    not (isinstance(node.func, ast.Attribute) and
                         node.func.attr in _MUTATING_METHODS):
                # helper-wrapped append: freeze the arguments the
                # resolved target forwards into a WORM append
                for name in index.frozen_args(node, caller):
                    frozen.setdefault(canonical(name), _pos(node))
            elif isinstance(node, ast.Assign):
                if len(node.targets) == 1 and \
                        isinstance(node.targets[0], ast.Name) and \
                        isinstance(node.value, ast.Name):
                    # alias = buf: mutations through either name count
                    aliases[node.targets[0].id] = canonical(node.value.id)
                for target in node.targets:
                    self._check_store(target, node, frozen_at, report)
            elif isinstance(node, ast.AugAssign):
                self._check_store(node.target, node, frozen_at, report)
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    self._check_store(target, node, frozen_at, report)
            elif isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Attribute) and \
                    node.func.attr in _MUTATING_METHODS and \
                    isinstance(node.func.value, ast.Name):
                name = node.func.value.id
                if frozen_at(name, node):
                    report(node, name,
                           f"mutating call .{node.func.attr}()")
        return findings

    @staticmethod
    def _check_store(target: ast.expr, node: ast.AST, frozen_at,
                     report) -> None:
        inner = target
        while isinstance(inner, (ast.Subscript, ast.Attribute)):
            inner = inner.value
        if inner is target:
            return  # plain rebinding of the name itself is harmless
        if isinstance(inner, ast.Name) and frozen_at(inner.id, node):
            kind = "subscript store" if isinstance(target, ast.Subscript) \
                else "attribute store"
            report(node, inner.id, kind)
