"""worm-immutability: buffers handed to WORM must not be touched again.

Paper invariant (Section III): WORM files are *term-immutable* — "once
written, their bytes can never be changed".  The simulated
:class:`~repro.worm.server.WormServer` group-commits appends through an
in-memory buffer, so the bytes a caller passes to
``WormServer.append``/``ComplianceLog.append``/``create_file`` may sit in
that buffer until the next durability barrier.  If the caller mutates the
object afterwards (or mutates it through an alias), the "immutable" log
silently changes before it reaches the volume — the exact laundering the
threat model forbids.

The rule tracks names passed as data arguments to append-like calls on
receivers that look like a WORM server or compliance log (dotted name
containing ``worm`` or ``clog``), including one level of aliasing
(``alias = buf``), and flags any later in-function mutation of a tracked
name: mutating method calls, subscript/attribute stores, augmented
assignment, and ``del``.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List

from ..core import (LintFinding, ModuleUnit, Project, Rule, dotted_name,
                    iter_functions, register_rule)

_WORM_RECEIVER_RE = re.compile(r"(?:^|[._])(worm|clog)(?:[._]|$)")
_APPEND_ATTRS = {"append", "create_file"}
_MUTATING_METHODS = {
    "append", "extend", "insert", "clear", "pop", "popitem", "remove",
    "sort", "reverse", "update", "setdefault", "add", "discard",
    "__setitem__"}


def _is_worm_append(call: ast.Call) -> bool:
    func = call.func
    if not isinstance(func, ast.Attribute) or \
            func.attr not in _APPEND_ATTRS:
        return False
    receiver = dotted_name(func.value)
    return receiver is not None and \
        bool(_WORM_RECEIVER_RE.search(receiver))


def _pos(node: ast.AST) -> tuple:
    return (node.lineno, node.col_offset)


@register_rule
class WormImmutabilityRule(Rule):
    """No mutation/aliasing of buffers after a WORM append."""

    name = "worm-immutability"
    description = ("flag mutation or aliasing of buffers after they are "
                   "passed to a WORM/compliance-log append")
    invariant = ("Section III: WORM files are term-immutable; bytes "
                 "buffered for append must never change afterwards")

    def check_module(self, unit: ModuleUnit,
                     project: Project) -> List[LintFinding]:
        findings: List[LintFinding] = []
        for fn in iter_functions(unit.tree):
            findings.extend(self._check_function(unit, fn))
        return findings

    def _check_function(self, unit: ModuleUnit,
                        fn: ast.AST) -> List[LintFinding]:
        #: name -> position of the append that froze it
        frozen: Dict[str, tuple] = {}
        aliases: Dict[str, str] = {}
        findings: List[LintFinding] = []
        nodes = [node for node in ast.walk(fn)
                 if hasattr(node, "lineno")]
        nodes.sort(key=_pos)

        def canonical(name: str) -> str:
            return aliases.get(name, name)

        def frozen_at(name: str, node: ast.AST) -> bool:
            origin = frozen.get(canonical(name))
            return origin is not None and origin < _pos(node)

        def report(node: ast.AST, name: str, what: str) -> None:
            findings.append(LintFinding(
                self.name, unit.path, node.lineno, node.col_offset,
                f"{what} of {name!r} after it was passed to a WORM "
                "append — the group-commit buffer aliases the object, "
                "so the 'immutable' log would change"))

        for node in nodes:
            if isinstance(node, ast.Call) and _is_worm_append(node):
                for arg in list(node.args) + \
                        [kw.value for kw in node.keywords]:
                    if isinstance(arg, ast.Name):
                        frozen.setdefault(canonical(arg.id), _pos(node))
            elif isinstance(node, ast.Assign):
                if len(node.targets) == 1 and \
                        isinstance(node.targets[0], ast.Name) and \
                        isinstance(node.value, ast.Name):
                    # alias = buf: mutations through either name count
                    aliases[node.targets[0].id] = canonical(node.value.id)
                for target in node.targets:
                    self._check_store(target, node, frozen_at, report)
            elif isinstance(node, ast.AugAssign):
                self._check_store(node.target, node, frozen_at, report)
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    self._check_store(target, node, frozen_at, report)
            elif isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Attribute) and \
                    node.func.attr in _MUTATING_METHODS and \
                    isinstance(node.func.value, ast.Name):
                name = node.func.value.id
                if frozen_at(name, node):
                    report(node, name,
                           f"mutating call .{node.func.attr}()")
        return findings

    @staticmethod
    def _check_store(target: ast.expr, node: ast.AST, frozen_at,
                     report) -> None:
        inner = target
        while isinstance(inner, (ast.Subscript, ast.Attribute)):
            inner = inner.value
        if inner is target:
            return  # plain rebinding of the name itself is harmless
        if isinstance(inner, ast.Name) and frozen_at(inner.id, node):
            kind = "subscript store" if isinstance(target, ast.Subscript) \
                else "attribute store"
            report(node, inner.id, kind)
