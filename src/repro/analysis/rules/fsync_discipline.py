"""fsync-before-rename: checkpoint publishes must be durable first.

Invariant (Section IV, applied to the auditor's own state): the
atomic-rename pattern — write ``file.tmp``, then ``os.replace`` it over
``file`` — only gives crash atomicity when the *contents* of the temp
file are on disk before the rename is.  Most filesystems may commit the
metadata (the rename) ahead of the data pages; after a crash the new
name then points at truncated or zero-filled bytes.  For this tree that
means a resumable-audit checkpoint or mode marker that *looks* valid
but replays garbage — worse than no checkpoint, because it defeats the
"resume from where you proved" guarantee.

The rule flags ``os.replace``/``os.rename``/``<path>.rename`` calls in
functions where no ``fsync`` happens lexically before the rename —
either a direct ``os.fsync(...)``/``<f>.fsync()`` call or a helper that
(within the call-graph depth bound) reaches one.  Renames of files the
function never wrote (pure moves) are rare in this tree; where one is
genuinely durable-by-construction, suppress with a justification.
"""

from __future__ import annotations

import ast
from typing import List

from ..core import (LintFinding, ModuleUnit, Project, Rule, before,
                    dotted_name, iter_functions, ordered_calls,
                    register_rule)

_RENAME_DOTTED = {"os.replace", "os.rename"}


def _is_rename(call: ast.Call) -> bool:
    callee = dotted_name(call.func)
    if callee in _RENAME_DOTTED:
        return True
    # pathlib: tmp.rename(dst) / tmp.replace(dst) — but never
    # str.replace(old, new), which takes two arguments
    if isinstance(call.func, ast.Attribute) and \
            call.func.attr in ("rename", "replace") and \
            callee is not None and not callee.startswith("os.") and \
            len(call.args) == 1 and not call.keywords:
        return call.func.attr == "rename" or \
            not isinstance(call.args[0], ast.Constant)
    return False


def _is_fsync(call: ast.Call) -> bool:
    callee = dotted_name(call.func)
    if callee == "os.fsync":
        return True
    return isinstance(call.func, ast.Attribute) and \
        call.func.attr == "fsync"


@register_rule
class FsyncBeforeRenameRule(Rule):
    """Atomic-rename publishes need a preceding fsync."""

    name = "fsync-before-rename"
    description = ("os.replace/rename of a checkpoint or marker without "
                   "an fsync of its contents first")
    invariant = ("crash atomicity: the rename may hit disk before the "
                 "data unless the data was fsynced first")

    def check_module(self, unit: ModuleUnit,
                     project: Project) -> List[LintFinding]:
        findings: List[LintFinding] = []
        graph = project.callgraph()
        for fn in iter_functions(unit.tree):
            calls = ordered_calls(fn)
            renames = [call for call in calls if _is_rename(call)]
            if not renames:
                continue
            caller = graph.info_for(fn)
            syncs = [call for call in calls
                     if _is_fsync(call) or
                     (not _is_rename(call) and
                      graph.call_reaches_attr(call, caller, {"fsync"}))]
            for rename in renames:
                if any(before(sync, rename) for sync in syncs):
                    continue
                target = dotted_name(rename.func) or \
                    f"<expr>.{rename.func.attr}"  # type: ignore[union-attr]
                findings.append(LintFinding(
                    self.name, unit.path, rename.lineno,
                    rename.col_offset,
                    f"'{fn.name}' publishes via {target}(...) with no "
                    "preceding fsync — after a crash the rename can be "
                    "durable while the file's bytes are not (torn "
                    "checkpoint/marker)"))
        return findings
