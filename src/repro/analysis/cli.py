"""Console entry point for ``repro-lint``.

Usage::

    repro-lint src/                      # human-readable report
    repro-lint --format json src/ tests/
    repro-lint --format gh src/          # GitHub problem-matcher lines
    repro-lint --select barrier-dominance,lock-discipline src/
    repro-lint --exclude '*lint_fixtures*' tests/
    repro-lint --baseline lint-baseline.json src/   # fail on NEW only
    repro-lint --baseline b.json --update-baseline src/
    repro-lint --list-rules

Exit codes: 0 — clean; 1 — findings; 2 — bad usage or unparseable input.

The ``gh`` format emits one ``path:line:col: rule: message`` line per
finding — the shape ``.github/repro-lint-problem-matcher.json`` parses
so CI findings annotate the PR diff.

A **baseline** is the JSON report of a previous run.  With
``--baseline FILE`` only findings *not* in the file fail the run, so a
new rule can land strict on new code while the existing debt is paid
down incrementally; matching ignores line/column drift (a finding is
identified by path + rule + message, counted as a multiset).
``--update-baseline`` rewrites FILE with the current findings.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from pathlib import Path
from typing import List, Optional, Tuple

from .core import RULE_REGISTRY, LintFinding, run_lint
from . import rules  # noqa: F401  -- ensure built-in rules are registered


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Protocol-invariant static analyzer for the "
                    "regulatory-compliant DBMS reproduction.")
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint")
    parser.add_argument("--format", choices=("text", "json", "gh"),
                        default="text",
                        help="output format (gh: GitHub problem-matcher "
                             "lines)")
    parser.add_argument("--select", metavar="RULES",
                        help="comma-separated rule names to run "
                             "(default: all)")
    parser.add_argument("--exclude", metavar="PATTERN", action="append",
                        default=[],
                        help="fnmatch pattern of paths to skip "
                             "(repeatable)")
    parser.add_argument("--baseline", metavar="FILE",
                        help="JSON report of accepted findings; only "
                             "new findings fail the run")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite --baseline FILE with the current "
                             "findings and exit 0")
    parser.add_argument("--list-rules", action="store_true",
                        help="list registered rules and exit")
    return parser


def _finding_key(item: "dict[str, object]") -> Tuple[str, str, str]:
    return (str(item.get("path", "")), str(item.get("rule", "")),
            str(item.get("message", "")))


def _apply_baseline(findings: List[LintFinding],
                    path: Path) -> Tuple[List[LintFinding], int]:
    """Split findings into (new, baselined-count) against ``path``."""
    raw = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(raw, list):
        raise ValueError(f"baseline {path} is not a JSON list")
    budget = Counter(_finding_key(item) for item in raw
                     if isinstance(item, dict))
    fresh: List[LintFinding] = []
    matched = 0
    for finding in findings:
        key = _finding_key(finding.as_dict())
        if budget[key] > 0:
            budget[key] -= 1
            matched += 1
        else:
            fresh.append(finding)
    return fresh, matched


def main(argv: Optional[List[str]] = None) -> int:
    """Run the linter; returns the process exit code."""
    parser = _build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        for name in sorted(RULE_REGISTRY):
            rule = RULE_REGISTRY[name]
            print(f"{name}: {rule.description}")
            if rule.invariant:
                print(f"    invariant: {rule.invariant}")
        return 0
    if not options.paths:
        parser.print_usage(sys.stderr)
        print("repro-lint: error: no paths given", file=sys.stderr)
        return 2
    if options.update_baseline and not options.baseline:
        print("repro-lint: error: --update-baseline needs --baseline",
              file=sys.stderr)
        return 2

    select = None
    if options.select:
        select = [part.strip() for part in options.select.split(",")
                  if part.strip()]
    try:
        findings = run_lint(options.paths, select=select,
                            exclude=options.exclude)
    except (KeyError, FileNotFoundError) as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return 2
    except SyntaxError as exc:
        print(f"repro-lint: error: cannot parse {exc.filename}: {exc}",
              file=sys.stderr)
        return 2

    if options.update_baseline:
        Path(options.baseline).write_text(
            json.dumps([finding.as_dict() for finding in findings],
                       indent=2) + "\n", encoding="utf-8")
        print(f"repro-lint: baseline updated with {len(findings)} "
              f"finding(s)")
        return 0

    baselined = 0
    if options.baseline:
        try:
            findings, baselined = _apply_baseline(
                findings, Path(options.baseline))
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"repro-lint: error: bad baseline: {exc}",
                  file=sys.stderr)
            return 2

    if options.format == "json":
        print(json.dumps([finding.as_dict() for finding in findings],
                         indent=2))
    elif options.format == "gh":
        for finding in findings:
            print(f"{finding.path}:{finding.line}:{finding.col}: "
                  f"{finding.rule}: {finding.message}")
    else:
        for finding in findings:
            print(finding)
        summary = "clean" if not findings else \
            f"{len(findings)} finding(s)"
        if baselined:
            summary += f" ({baselined} baselined)"
        print(f"repro-lint: {summary}")
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover - exercised via console script
    sys.exit(main())
