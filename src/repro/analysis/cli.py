"""Console entry point for ``repro-lint``.

Usage::

    repro-lint src/                      # human-readable report
    repro-lint --format json src/ tests/
    repro-lint --select barrier-dominance,lock-discipline src/
    repro-lint --list-rules

Exit codes: 0 — clean; 1 — findings; 2 — bad usage or unparseable input.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .core import RULE_REGISTRY, run_lint
from . import rules  # noqa: F401  -- ensure built-in rules are registered


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Protocol-invariant static analyzer for the "
                    "regulatory-compliant DBMS reproduction.")
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", help="output format")
    parser.add_argument("--select", metavar="RULES",
                        help="comma-separated rule names to run "
                             "(default: all)")
    parser.add_argument("--list-rules", action="store_true",
                        help="list registered rules and exit")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Run the linter; returns the process exit code."""
    parser = _build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        for name in sorted(RULE_REGISTRY):
            rule = RULE_REGISTRY[name]
            print(f"{name}: {rule.description}")
            if rule.invariant:
                print(f"    invariant: {rule.invariant}")
        return 0
    if not options.paths:
        parser.print_usage(sys.stderr)
        print("repro-lint: error: no paths given", file=sys.stderr)
        return 2

    select = None
    if options.select:
        select = [part.strip() for part in options.select.split(",")
                  if part.strip()]
    try:
        findings = run_lint(options.paths, select=select)
    except (KeyError, FileNotFoundError) as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return 2
    except SyntaxError as exc:
        print(f"repro-lint: error: cannot parse {exc.filename}: {exc}",
              file=sys.stderr)
        return 2

    if options.format == "json":
        print(json.dumps([finding.as_dict() for finding in findings],
                         indent=2))
    else:
        for finding in findings:
            print(finding)
        summary = "clean" if not findings else \
            f"{len(findings)} finding(s)"
        print(f"repro-lint: {summary}")
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover - exercised via console script
    sys.exit(main())
