"""Project-wide name resolution and call graph for ``repro-lint`` v2.

PR 2's rules were per-function pattern matchers: a barrier had to be
*lexically* visible in the function it protected, a ``release_all`` had
to appear literally inside the ``finally`` block that guaranteed it.
PR 7 moved the hardest invariants into helpers and wrappers
(``SingleWriterExecutor.submit`` closures, ``_abort_session_txns``,
checkpoint helpers), where a per-module scan is blind both ways: it
misses violations hidden behind a call, and it cries wolf on code whose
discipline lives one frame down.

This module gives the rules an interprocedural substrate:

* **Function index** — every (sync or async) function/method in the
  linted set, keyed ``module:qualname`` (:class:`FunctionInfo`).
* **Name resolution** — a call site resolves to candidate project
  functions through four bounded strategies, in order:

  1. *local*: a plain ``name(...)`` to a function of the same module
     (enclosing ``def``s first, then module scope);
  2. *import*: ``from m import f`` / ``import m`` aliases followed into
     other linted modules;
  3. *self/cls*: ``self.m(...)``/``cls.m(...)`` resolved through the
     enclosing class and its project-resolvable bases;
  4. *unique name*: ``obj.m(...)`` when exactly one project function is
     named ``m`` — unambiguous in practice for the protocol helpers the
     rules care about; anything ambiguous resolves to nothing rather
     than to everything.

* **Bounded call summaries** — :meth:`CallGraph.transitive_attrs`
  answers "which callee names does this function reach within *k*
  calls?" and :meth:`CallGraph.reaches` runs an arbitrary per-call
  predicate down the graph.  Both are memoised and depth-bounded
  (default :data:`DEFAULT_DEPTH`), so a cycle or a pathological chain
  cannot hang the linter.
* **Reachability** — :meth:`CallGraph.reachable_functions` computes the
  closure of the call graph from a set of root functions (used by
  ``replay-determinism`` to scope its bans to audit/replay code).

The graph is deliberately an *approximation*: unresolved calls (into
the stdlib, through ambiguous attributes, via dynamic dispatch tables)
contribute nothing.  Rules must therefore treat resolution as evidence,
never as proof of absence — the same stance DESIGN.md §7 takes for the
lexical dominance approximation.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import PurePath
from typing import (Callable, Dict, Iterable, Iterator, List, Optional,
                    Sequence, Set, Tuple)

#: default bound on summary/reachability recursion depth
DEFAULT_DEPTH = 5

FunctionNode = ast.AST  # FunctionDef | AsyncFunctionDef


@dataclass
class FunctionInfo:
    """One function or method in the linted project."""

    key: str                 #: unique id: ``module:qualname``
    module: str              #: dotted module name ('' when unknown)
    qualname: str            #: ``Class.method`` / ``func`` / nested
    name: str                #: bare function name
    class_name: Optional[str]
    node: FunctionNode
    unit: "ModuleUnit"       # type: ignore[name-defined]  # noqa: F821


@dataclass
class ClassInfo:
    """A class definition and its directly defined methods."""

    name: str
    module: str
    node: ast.ClassDef
    bases: List[str] = field(default_factory=list)
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)


def module_name_for(path: str) -> str:
    """Dotted module name a file would import as.

    ``src/repro/txn/locks.py`` → ``repro.txn.locks``;  files outside a
    ``src`` root (tests, benchmarks, fixtures) are treated as top-level
    modules named by their stem.
    """
    parts = list(PurePath(path).parts)
    stem = PurePath(path).stem
    if "src" in parts:
        rel = parts[parts.index("src") + 1:]
        dotted = [p for p in rel[:-1]] + ([] if stem == "__init__"
                                          else [stem])
        return ".".join(dotted)
    return stem


def iter_calls(node: ast.AST) -> Iterator[ast.Call]:
    """Every call node under ``node``."""
    for inner in ast.walk(node):
        if isinstance(inner, ast.Call):
            yield inner


class CallGraph:
    """Lazy, bounded call graph over a :class:`Project`'s units."""

    def __init__(self, units: Sequence[object]):
        self.units = list(units)
        #: key -> info
        self.functions: Dict[str, FunctionInfo] = {}
        #: id(ast node) -> info (for info_for lookups)
        self._by_node: Dict[int, FunctionInfo] = {}
        #: bare name -> every project function with that name
        self._by_name: Dict[str, List[FunctionInfo]] = {}
        #: class name -> defs (a name may be defined in several modules)
        self._classes: Dict[str, List[ClassInfo]] = {}
        #: module -> {local alias -> dotted target}
        self._imports: Dict[str, Dict[str, str]] = {}
        #: module -> {function name -> info} (module-level only)
        self._module_funcs: Dict[str, Dict[str, FunctionInfo]] = {}
        #: memo for transitive_attrs: (key, depth) -> attr set
        self._attr_memo: Dict[Tuple[str, int], Set[str]] = {}
        self._index()

    # -- index construction ------------------------------------------------

    def _index(self) -> None:
        for unit in self.units:
            module = module_name_for(unit.path)  # type: ignore[attr-defined]
            tree = unit.tree  # type: ignore[attr-defined]
            self._imports.setdefault(module, {})
            self._module_funcs.setdefault(module, {})
            self._index_imports(module, tree)
            self._index_scope(unit, module, tree, prefix="",
                              class_name=None)

    def _index_imports(self, module: str, tree: ast.Module) -> None:
        table = self._imports[module]
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    table[alias.asname or
                          alias.name.split(".")[0]] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module:
                base = node.module
                if node.level:  # relative: anchor at this module's pkg
                    pkg = module.split(".")
                    pkg = pkg[:max(0, len(pkg) - node.level)]
                    base = ".".join(pkg + [node.module])
                for alias in node.names:
                    table[alias.asname or alias.name] = \
                        f"{base}.{alias.name}"

    def _index_scope(self, unit: object, module: str, node: ast.AST,
                     prefix: str, class_name: Optional[str]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{child.name}"
                info = FunctionInfo(
                    key=f"{module}:{qual}", module=module, qualname=qual,
                    name=child.name, class_name=class_name, node=child,
                    unit=unit)  # type: ignore[arg-type]
                self.functions[info.key] = info
                self._by_node[id(child)] = info
                self._by_name.setdefault(child.name, []).append(info)
                if not prefix:
                    self._module_funcs[module][child.name] = info
                if class_name is not None and \
                        prefix == f"{class_name}.":
                    for cls in self._classes.get(class_name, []):
                        if cls.module == module:
                            cls.methods[child.name] = info
                self._index_scope(unit, module, child,
                                  prefix=f"{qual}.",
                                  class_name=class_name)
            elif isinstance(child, ast.ClassDef):
                bases = []
                for base in child.bases:
                    dotted = _dotted(base)
                    if dotted is not None:
                        bases.append(dotted.split(".")[-1])
                self._classes.setdefault(child.name, []).append(
                    ClassInfo(name=child.name, module=module,
                              node=child, bases=bases))
                self._index_scope(unit, module, child,
                                  prefix=f"{prefix}{child.name}.",
                                  class_name=child.name)
            else:
                self._index_scope(unit, module, child, prefix=prefix,
                                  class_name=class_name)

    # -- lookups -----------------------------------------------------------

    def info_for(self, node: FunctionNode) -> Optional[FunctionInfo]:
        """The :class:`FunctionInfo` of a function AST node, if indexed."""
        return self._by_node.get(id(node))

    def functions_of_unit(self, unit: object) -> List[FunctionInfo]:
        """Every indexed function defined in ``unit``."""
        return [info for info in self.functions.values()
                if info.unit is unit]

    def _method_of(self, class_name: str, method: str,
                   depth: int = 3) -> List[FunctionInfo]:
        """Resolve a method through a class and its named bases."""
        out: List[FunctionInfo] = []
        for cls in self._classes.get(class_name, []):
            if method in cls.methods:
                out.append(cls.methods[method])
            elif depth > 0:
                for base in cls.bases:
                    if base != class_name:
                        out.extend(self._method_of(base, method,
                                                   depth - 1))
        return out

    # -- call resolution ---------------------------------------------------

    def resolve_call(self, call: ast.Call,
                     caller: Optional[FunctionInfo]) -> List[FunctionInfo]:
        """Candidate project functions a call may invoke (possibly [])."""
        func = call.func
        module = caller.module if caller is not None else ""
        if isinstance(func, ast.Name):
            return self._resolve_name(func.id, module)
        if isinstance(func, ast.Attribute):
            return self._resolve_attribute(func, caller, module)
        return []

    def _resolve_name(self, name: str, module: str) -> List[FunctionInfo]:
        local = self._module_funcs.get(module, {}).get(name)
        if local is not None:
            return [local]
        target = self._imports.get(module, {}).get(name)
        if target is not None and "." in target:
            mod, attr = target.rsplit(".", 1)
            imported = self._module_funcs.get(mod, {}).get(attr)
            if imported is not None:
                return [imported]
        return []

    def _resolve_attribute(self, func: ast.Attribute,
                           caller: Optional[FunctionInfo],
                           module: str) -> List[FunctionInfo]:
        attr = func.attr
        value = func.value
        if isinstance(value, ast.Name):
            if value.id in ("self", "cls") and caller is not None and \
                    caller.class_name is not None:
                found = self._method_of(caller.class_name, attr)
                if found:
                    return found
            # module alias: ``import repro.x as y; y.f(...)`` or
            # ``from repro import x; x.f(...)``
            target = self._imports.get(module, {}).get(value.id)
            if target is not None:
                imported = self._module_funcs.get(target, {}).get(attr)
                if imported is not None:
                    return [imported]
        # unique-name fallback: unambiguous project-wide method name
        candidates = self._by_name.get(attr, [])
        if len(candidates) == 1:
            return candidates
        return []

    # -- summaries ---------------------------------------------------------

    def transitive_attrs(self, info: FunctionInfo,
                         depth: int = DEFAULT_DEPTH) -> Set[str]:
        """Callee names invoked within ``depth`` calls of ``info``.

        Includes both attribute calls (``x.barrier()`` → ``barrier``)
        and plain-name calls (``flush()`` → ``flush``); resolution
        failures simply contribute their textual name.
        """
        memo_key = (info.key, depth)
        cached = self._attr_memo.get(memo_key)
        if cached is not None:
            return cached
        self._attr_memo[memo_key] = set()  # cycle guard
        attrs: Set[str] = set()
        for call in iter_calls(info.node):
            name = _callee_name(call)
            if name:
                attrs.add(name)
            if depth > 0:
                for target in self.resolve_call(call, info):
                    if target.key != info.key:
                        attrs |= self.transitive_attrs(target, depth - 1)
        self._attr_memo[memo_key] = attrs
        return attrs

    def call_reaches_attr(self, call: ast.Call,
                          caller: Optional[FunctionInfo],
                          attrs: Set[str],
                          depth: int = DEFAULT_DEPTH) -> bool:
        """Whether a call resolves to a function that (transitively)
        invokes one of ``attrs``."""
        for target in self.resolve_call(call, caller):
            if attrs & self.transitive_attrs(target, depth):
                return True
        return False

    def reaches(self, info: FunctionInfo,
                pred: Callable[[ast.Call], Optional[str]],
                depth: int = DEFAULT_DEPTH,
                _seen: Optional[Set[str]] = None) -> Optional[str]:
        """First description returned by ``pred`` over any call within
        ``depth`` frames of ``info`` (depth-first), else ``None``."""
        seen = _seen if _seen is not None else set()
        if info.key in seen:
            return None
        seen.add(info.key)
        for call in iter_calls(info.node):
            hit = pred(call)
            if hit is not None:
                return hit
            if depth > 0:
                for target in self.resolve_call(call, info):
                    found = self.reaches(target, pred, depth - 1, seen)
                    if found is not None:
                        return found
        return None

    def reachable_functions(self, roots: Iterable[FunctionInfo],
                            depth: int = 64) -> Set[str]:
        """Keys of every function reachable from ``roots`` (inclusive)."""
        frontier = list(roots)
        seen: Set[str] = {info.key for info in frontier}
        for _ in range(depth):
            if not frontier:
                break
            new: List[FunctionInfo] = []
            for info in frontier:
                for call in iter_calls(info.node):
                    for target in self.resolve_call(call, info):
                        if target.key not in seen:
                            seen.add(target.key)
                            new.append(target)
            frontier = new
        return seen


def _dotted(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return None if base is None else f"{base}.{node.attr}"
    return None


def _callee_name(call: ast.Call) -> str:
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""
