"""``repro-lint``: protocol-invariant static analysis for the repo.

The compliance architecture's guarantees rest on ordering and immutability
invariants (Sections IV–VI of the paper) that ordinary review easily loses
across refactors: data-page write-backs must wait for their NEW_TUPLE
records to reach WORM, audit replay must be deterministic, and every
record type must be handled by recovery, replay, and forensics.  This
package encodes those invariants as AST-based lint rules so the build —
not a reviewer — enforces them.

Public surface:

* :func:`repro.analysis.core.run_lint` — lint a set of paths, returning
  :class:`~repro.analysis.core.LintFinding` objects.
* :data:`~repro.analysis.core.RULE_REGISTRY` — name → rule class.
* ``repro-lint`` console script (:mod:`repro.analysis.cli`).
"""

from .core import (LintFinding, Project, Rule, RULE_REGISTRY, register_rule,
                   run_lint)
from . import rules  # noqa: F401  -- importing registers the built-in rules

__all__ = ["LintFinding", "Project", "RULE_REGISTRY", "Rule",
           "register_rule", "run_lint"]
