"""Framework for ``repro-lint``: units, rule registry, suppressions.

Design
------

* A :class:`ModuleUnit` is one parsed source file: AST, raw source, and
  the suppression/marker comments extracted from its token stream.
* A :class:`Project` is the set of units being linted together.  Rules
  run in two phases: :meth:`Rule.check_module` per unit, then
  :meth:`Rule.finalize` once with the whole project (used by rules that
  need cross-file facts, e.g. enum definitions in one module and their
  dispatchers in another).
* Suppressions are source comments::

      # repro-lint: disable=<rule>[,<rule>] -- <justification>
      # repro-lint: disable-file=<rule>[,<rule>] -- <justification>

  The first form silences findings reported on its own line; the second
  silences the whole file.  A justification (the ``--`` clause) is
  **mandatory**: a bare disable is itself reported under the
  ``suppression-justification`` pseudo-rule, so every suppression left in
  the tree carries its one-line why.
* ``# repro-lint: exhaustive=<EnumName>`` marks a module as a dispatcher
  that must mention every member of ``EnumName`` (used by the
  ``record-exhaustiveness`` rule and its fixtures).
* ``# repro-lint: replay-root`` marks every function in a module as an
  audit/replay entry point for the interprocedural
  ``replay-determinism`` reachability pass (the four core audit modules
  are roots automatically).
* ``# repro-lint: strict-release`` opts a module into the
  ``exception-safe-release`` rule outside the ``repro`` package (engine
  sources are strict automatically; straight-line test/demo scripts on
  scratch databases are not).
"""

from __future__ import annotations

import ast
import fnmatch
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import (Dict, Iterable, Iterator, List, Optional, Sequence, Set,
                    Tuple, Type)

# args is non-greedy so a ``-- justification`` made only of word/space/
# hyphen characters is not swallowed into the rule list
_DIRECTIVE_RE = re.compile(
    r"#\s*repro-lint:\s*(?P<kind>disable-file|disable|exhaustive"
    r"|replay-root|strict-release)"
    r"(?:=(?P<args>[A-Za-z0-9_.,\- ]+?))?"
    r"(?P<why>\s*--.*)?$")

#: sentinel rule-name meaning "every rule"
ALL_RULES = "all"


@dataclass(frozen=True)
class LintFinding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] " \
               f"{self.message}"

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready representation."""
        return {"rule": self.rule, "path": self.path, "line": self.line,
                "col": self.col, "message": self.message}


@dataclass
class Suppression:
    """A parsed ``disable``/``disable-file`` directive."""

    line: int
    rules: Set[str]
    file_scope: bool
    justified: bool


@dataclass
class ModuleUnit:
    """One parsed source file plus its lint directives."""

    path: str
    source: str
    tree: ast.Module
    suppressions: List[Suppression] = field(default_factory=list)
    #: enum names this module promises to dispatch exhaustively
    exhaustive_marks: List[str] = field(default_factory=list)
    #: ``replay-root`` directive: every function here is an audit/replay
    #: entry point for the reachability pass
    replay_root: bool = False
    #: ``strict-release`` directive: run ``exception-safe-release`` here
    #: even outside the ``repro`` package
    strict_release: bool = False

    def in_repro_package(self) -> bool:
        """Whether this unit is part of the engine source tree."""
        return "repro" in Path(self.path).parts

    def suppressed(self, rule: str, line: int) -> bool:
        """Whether a finding of ``rule`` at ``line`` is silenced."""
        for sup in self.suppressions:
            if rule not in sup.rules and ALL_RULES not in sup.rules:
                continue
            if sup.file_scope or sup.line == line:
                return True
        return False


class Project:
    """The set of units linted together, with cross-file lookups."""

    def __init__(self, units: Sequence[ModuleUnit]):
        self.units = list(units)
        self._callgraph: Optional[object] = None

    def callgraph(self) -> "CallGraph":  # type: ignore[name-defined]
        """The (cached) interprocedural call graph over all units."""
        from .callgraph import CallGraph
        if self._callgraph is None:
            self._callgraph = CallGraph(self.units)
        return self._callgraph  # type: ignore[return-value]

    def enum_members(self, enum_name: str) -> Optional[List[str]]:
        """Member names of an enum class defined anywhere in the project.

        Finds ``class <enum_name>(...)`` and returns its class-level
        assignment targets (the idiom both record modules use); ``None``
        when no unit defines the class.
        """
        for unit in self.units:
            for node in ast.walk(unit.tree):
                if not isinstance(node, ast.ClassDef) or \
                        node.name != enum_name:
                    continue
                members: List[str] = []
                for stmt in node.body:
                    if isinstance(stmt, ast.Assign):
                        for target in stmt.targets:
                            if isinstance(target, ast.Name):
                                members.append(target.id)
                    elif isinstance(stmt, ast.AnnAssign) and \
                            isinstance(stmt.target, ast.Name) and \
                            stmt.value is not None:
                        members.append(stmt.target.id)
                return members
        return None


class Rule:
    """Base class for lint rules.  Subclass and :func:`register_rule`."""

    #: kebab-case rule name used in reports and suppressions
    name: str = ""
    #: one-line description for ``--list-rules``
    description: str = ""
    #: the paper invariant the rule encodes (documentation)
    invariant: str = ""

    def check_module(self, unit: ModuleUnit,
                     project: Project) -> List[LintFinding]:
        """Per-file pass; return findings (suppressions applied later)."""
        return []

    def finalize(self, project: Project) -> List[LintFinding]:
        """Whole-project pass after every unit has been seen."""
        return []


RULE_REGISTRY: Dict[str, Type[Rule]] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the registry (name must be set)."""
    if not cls.name:
        raise ValueError(f"rule {cls.__name__} has no name")
    if cls.name in RULE_REGISTRY:
        raise ValueError(f"duplicate rule name {cls.name!r}")
    RULE_REGISTRY[cls.name] = cls
    return cls


# -- AST helpers shared by the rules ----------------------------------------


def dotted_name(node: ast.expr) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain; None for anything else."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        return None if base is None else f"{base}.{node.attr}"
    return None


def iter_functions(tree: ast.Module) -> Iterator[ast.FunctionDef]:
    """Every (sync or async) function definition in a module, any depth."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node  # type: ignore[misc]


def ordered_calls(fn: ast.AST) -> List[ast.Call]:
    """Call nodes under ``fn`` in source order."""
    calls = [node for node in ast.walk(fn) if isinstance(node, ast.Call)]
    calls.sort(key=lambda c: (c.lineno, c.col_offset))
    return calls


def before(a: ast.AST, b: ast.AST) -> bool:
    """Whether node ``a`` starts strictly before node ``b`` in the source.

    Lexical order is this framework's **dominance approximation**: within
    the small, straight-line protocol functions these rules police, a
    call that appears earlier in the body runs earlier on the path that
    reaches the later call.  (A full CFG would be needed for arbitrary
    control flow; see DESIGN.md §7.)
    """
    return (a.lineno, a.col_offset) < (b.lineno, b.col_offset)


# -- parsing ----------------------------------------------------------------


@dataclass
class _Directives:
    suppressions: List[Suppression] = field(default_factory=list)
    marks: List[str] = field(default_factory=list)
    replay_root: bool = False
    strict_release: bool = False


def _parse_directives(source: str) -> _Directives:
    out = _Directives()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [(tok.start[0], tok.string) for tok in tokens
                    if tok.type == tokenize.COMMENT]
    except tokenize.TokenizeError:
        return out
    for line, text in comments:
        match = _DIRECTIVE_RE.search(text)
        if match is None:
            continue
        kind = match.group("kind")
        if kind == "replay-root":
            out.replay_root = True
            continue
        if kind == "strict-release":
            out.strict_release = True
            continue
        args = [part.strip() for part in
                (match.group("args") or ALL_RULES).split(",") if
                part.strip()]
        if kind == "exhaustive":
            out.marks.extend(args)
            continue
        out.suppressions.append(Suppression(
            line=line, rules=set(args),
            file_scope=(kind == "disable-file"),
            justified=bool(match.group("why"))))
    return out


def load_unit(path: Path) -> ModuleUnit:
    """Parse one file into a :class:`ModuleUnit`.

    Raises :class:`SyntaxError` for unparseable sources — the CLI maps
    that to exit code 2.
    """
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    directives = _parse_directives(source)
    return ModuleUnit(path=str(path), source=source, tree=tree,
                      suppressions=directives.suppressions,
                      exhaustive_marks=directives.marks,
                      replay_root=directives.replay_root,
                      strict_release=directives.strict_release)


def collect_files(paths: Iterable[str],
                  exclude: Optional[Sequence[str]] = None) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files.

    ``exclude`` holds :mod:`fnmatch` patterns matched against each
    file's path string (e.g. ``*lint_fixtures*`` keeps the known-bad
    fixtures out of a whole-tree CI run).  Explicitly named files are
    excluded too — the flag wins over the positional.
    """
    patterns = list(exclude or [])

    def keep(path: Path) -> bool:
        text = str(path)
        return not any(fnmatch.fnmatch(text, pat) for pat in patterns)

    out: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            out.extend(p for p in sorted(path.rglob("*.py")) if keep(p))
        elif path.suffix == ".py":
            if keep(path):
                out.append(path)
        else:
            raise FileNotFoundError(f"not a Python file or directory: "
                                    f"{raw}")
    return out


# -- driver -----------------------------------------------------------------


def run_lint(paths: Iterable[str],
             select: Optional[Iterable[str]] = None,
             exclude: Optional[Sequence[str]] = None) -> List[LintFinding]:
    """Lint ``paths`` with the selected rules (default: all registered).

    Returns findings sorted by location, with suppressions applied and
    unjustified suppressions reported under
    ``suppression-justification``.
    """
    names = list(select) if select is not None else sorted(RULE_REGISTRY)
    unknown = [name for name in names if name not in RULE_REGISTRY]
    if unknown:
        raise KeyError(f"unknown rule(s): {', '.join(unknown)}")
    units = [load_unit(path) for path in collect_files(paths, exclude)]
    project = Project(units)
    rules = [RULE_REGISTRY[name]() for name in names]

    findings: List[LintFinding] = []
    for rule in rules:
        for unit in units:
            findings.extend(rule.check_module(unit, project))
        findings.extend(rule.finalize(project))

    kept = []
    by_path = {unit.path: unit for unit in units}
    for finding in findings:
        unit = by_path.get(finding.path)
        if unit is not None and unit.suppressed(finding.rule, finding.line):
            continue
        kept.append(finding)
    for unit in units:
        for sup in unit.suppressions:
            if not sup.justified:
                kept.append(LintFinding(
                    rule="suppression-justification", path=unit.path,
                    line=sup.line, col=0,
                    message="suppression without a justification — add "
                            "'-- <one-line reason>' to the disable "
                            "comment"))
    # message participates so repeated runs over identical inputs emit
    # byte-identical reports (the CLI-contract determinism guarantee)
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule, f.message))
    return kept
