"""Runtime concurrency sanitizer: lock order + single-writer confinement.

The static rules in :mod:`repro.analysis.rules` prove *shape*; this
module watches the real threads.  When installed it monkey-patches four
seams — cheaply enough to run under the full server test suite:

* ``threading.Lock`` — every lock created while installed is wrapped in
  a :class:`_TracedLock` named by its creation site.  Each successful
  acquisition while other traced locks are held adds *held-site →
  acquired-site* edges to a global acquisition-order graph; a cycle
  means two threads can deadlock, and is recorded as a ``lock-order``
  **violation** with both acquisition stacks' sites.
* ``LockTable.acquire``/``release_all``/``clear`` — the strict-2PL
  table.  Per-transaction resource acquisition order feeds a second
  graph; cycles there are recorded as ``resource-order`` **warnings**
  (this engine's table rejects conflicts immediately instead of
  blocking, so an order inversion is a latent hazard for a blocking
  lock manager, not a live deadlock).
* ``SingleWriterExecutor._run`` — registers the writer thread that owns
  a database.
* ``ComplianceService.__init__`` — binds the service's database (via
  its engine's lock table) to that executor.  From then on a
  ``LockTable.acquire`` from any *other* thread while the writer is
  alive is a ``confinement`` **violation**: exactly the race the
  single-writer design exists to make impossible.

Enable per-process with the ``REPRO_SANITIZE=1`` environment variable
(the test suites' conftest installs it and fails any test that adds a
violation) or per-database with ``DBConfig.obs.sanitize = True``.
Everything here is stdlib-only and import-light so the engine can pull
it in lazily.
"""

from __future__ import annotations

import os
import sys
import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

#: environment toggle honoured by CompliantDB and the test conftest
ENV_VAR = "REPRO_SANITIZE"


def env_enabled() -> bool:
    """Whether ``REPRO_SANITIZE`` asks for the sanitizer."""
    return os.environ.get(ENV_VAR, "").strip().lower() not in \
        ("", "0", "false", "no")


@dataclass(frozen=True)
class Violation:
    """One detected concurrency-discipline breach."""

    kind: str        #: 'lock-order' | 'confinement' | 'resource-order'
    message: str
    thread: str      #: name of the thread that completed the breach

    def __str__(self) -> str:
        return f"[{self.kind}] {self.message} (thread {self.thread})"


class SanitizerError(AssertionError):
    """Raised by :meth:`LockOrderSanitizer.assert_clean`."""


def _creation_site(depth: int = 2) -> str:
    """``file:line`` of the frame that created a lock."""
    frame = sys._getframe(depth)
    return f"{os.path.basename(frame.f_code.co_filename)}:" \
           f"{frame.f_lineno}"


class _TracedLock:
    """Proxy around a real ``threading.Lock`` that reports acquisitions.

    Exposes the full lock protocol (``acquire``/``release``/context
    manager/``locked``) so it also works as the lock behind a
    ``threading.Condition`` — the Condition fallbacks only need these.
    """

    def __init__(self, sanitizer: "LockOrderSanitizer", site: str):
        self._lock = sanitizer._real_lock_factory()
        self._sanitizer = sanitizer
        self.site = site

    def acquire(self, blocking: bool = True,
                timeout: float = -1) -> bool:
        got = self._lock.acquire(blocking, timeout)  # repro-lint: disable=lock-discipline -- proxy method: the CALLER owns this mutex's scope; the proxy only forwards and records
        if got:
            self._sanitizer._on_mutex_acquired(self)
        return got

    def release(self) -> None:
        self._sanitizer._on_mutex_released(self)
        self._lock.release()

    def locked(self) -> bool:
        return self._lock.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: object) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<_TracedLock {self.site} locked={self.locked()}>"


class LockOrderSanitizer:
    """Acquisition-order graphs plus writer-thread confinement checks."""

    def __init__(self) -> None:
        #: the unpatched factory (captured at install)
        self._real_lock_factory: Callable[[], Any] = threading.Lock
        self._guard = threading.Lock()  # created pre-patch in practice
        self._tls = threading.local()
        #: mutex graph: site -> sites acquired while it was held
        self._edges: Dict[str, Set[str]] = {}
        #: resource graph: resource -> resources acquired later by a txn
        self._res_edges: Dict[Any, Set[Any]] = {}
        #: (table id, txn id) -> resources held, in acquisition order
        self._txn_held: Dict[Tuple[int, int], List[Any]] = {}
        #: lock-table id -> executor whose writer thread owns it
        self._confined: Dict[int, Any] = {}
        #: executor id -> live writer thread
        self._writers: Dict[int, threading.Thread] = {}
        self.violations: List[Violation] = []
        self.warnings: List[Violation] = []
        self._installed = False
        #: patch site -> original (key: 'threading.Lock' or (cls, attr))
        self._saved: Dict[Any, Any] = {}

    # -- lifecycle ---------------------------------------------------------

    def install(self) -> None:
        """Patch the four seams (idempotent)."""
        if self._installed:
            return
        self._installed = True
        self._real_lock_factory = threading.Lock
        self._saved["threading.Lock"] = threading.Lock

        def traced_lock() -> _TracedLock:
            return _TracedLock(self, _creation_site())

        threading.Lock = traced_lock  # type: ignore[misc,assignment]
        self._patch_lock_table()
        self._patch_server()

    def uninstall(self) -> None:
        """Undo every patch this instance applied."""
        if not self._installed:
            return
        self._installed = False
        threading.Lock = (  # type: ignore[misc]
            self._saved.pop("threading.Lock"))
        for dotted, original in self._saved.items():
            cls_or_mod, attr = dotted
            setattr(cls_or_mod, attr, original)
        self._saved.clear()

    def reset(self) -> None:
        """Forget graphs and reports (keeps the patches in place)."""
        with self._guard:
            self._edges.clear()
            self._res_edges.clear()
            self._txn_held.clear()
            self.violations.clear()
            self.warnings.clear()

    def assert_clean(self) -> None:
        """Raise :class:`SanitizerError` if any violation was recorded."""
        if self.violations:
            lines = "\n".join(f"  {v}" for v in self.violations)
            raise SanitizerError(
                f"{len(self.violations)} concurrency violation(s):\n"
                f"{lines}")

    # -- patching ----------------------------------------------------------

    def _patch_lock_table(self) -> None:
        from ..txn.locks import LockTable
        sanitizer = self

        orig_acquire = LockTable.acquire
        orig_release_all = LockTable.release_all
        orig_clear = LockTable.clear

        def acquire(table: Any, txn_id: int, resource: str,
                    mode: Any) -> Any:
            sanitizer._check_confinement(table)
            result = orig_acquire(table, txn_id, resource, mode)
            sanitizer._on_table_acquired(table, txn_id, resource)
            return result

        def release_all(table: Any, txn_id: int) -> Any:
            result = orig_release_all(table, txn_id)
            with sanitizer._guard:
                sanitizer._txn_held.pop((id(table), txn_id), None)
            return result

        def clear(table: Any) -> Any:
            result = orig_clear(table)
            with sanitizer._guard:
                for key in [k for k in sanitizer._txn_held
                            if k[0] == id(table)]:
                    del sanitizer._txn_held[key]
            return result

        for attr, patched, original in (
                ("acquire", acquire, orig_acquire),
                ("release_all", release_all, orig_release_all),
                ("clear", clear, orig_clear)):
            setattr(LockTable, attr, patched)
            self._saved[(LockTable, attr)] = original

    def _patch_server(self) -> None:
        from ..server.service import ComplianceService, \
            SingleWriterExecutor
        sanitizer = self

        orig_run = SingleWriterExecutor._run
        orig_init = ComplianceService.__init__

        def _run(executor: Any) -> Any:
            with sanitizer._guard:
                sanitizer._writers[id(executor)] = \
                    threading.current_thread()
            try:
                return orig_run(executor)
            finally:
                with sanitizer._guard:
                    sanitizer._writers.pop(id(executor), None)

        def __init__(service: Any, db: Any, *args: Any,
                     **kwargs: Any) -> None:
            orig_init(service, db, *args, **kwargs)
            sanitizer.confine(db, service.executor)

        SingleWriterExecutor._run = _run  # type: ignore[method-assign]
        self._saved[(SingleWriterExecutor, "_run")] = orig_run
        ComplianceService.__init__ = (  # type: ignore[method-assign]
            __init__)
        self._saved[(ComplianceService, "__init__")] = orig_init

    def confine(self, db: Any, executor: Any) -> None:
        """Bind ``db``'s lock table to ``executor``'s writer thread."""
        table = getattr(getattr(getattr(db, "engine", None), "txns",
                                None), "locks", None)
        if table is None:
            return
        with self._guard:
            self._confined[id(table)] = executor

    # -- event handlers ----------------------------------------------------

    def _held_stack(self) -> List[_TracedLock]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def _on_mutex_acquired(self, lock: _TracedLock) -> None:
        stack = self._held_stack()
        with self._guard:
            for held in stack:
                if held.site != lock.site:
                    self._add_edge(self._edges, held.site, lock.site,
                                   kind="lock-order",
                                   what="threading locks")
        stack.append(lock)

    def _on_mutex_released(self, lock: _TracedLock) -> None:
        stack = self._held_stack()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] is lock:
                del stack[index]
                break

    def _on_table_acquired(self, table: Any, txn_id: int,
                           resource: str) -> None:
        key = (id(table), txn_id)
        with self._guard:
            held = self._txn_held.setdefault(key, [])
            for earlier in held:
                if earlier != resource:
                    self._add_edge(self._res_edges, earlier, resource,
                                   kind="resource-order",
                                   what="lock-table resources")
            if resource not in held:
                held.append(resource)

    def _check_confinement(self, table: Any) -> None:
        with self._guard:
            executor = self._confined.get(id(table))
            writer = self._writers.get(id(executor)) \
                if executor is not None else None
        if writer is None or writer is threading.current_thread():
            return
        self._record(Violation(
            "confinement",
            "LockTable touched off the writer thread while the "
            "SingleWriterExecutor is running — database state must "
            "only be reached through executor.submit(...)",
            threading.current_thread().name))

    # -- graph bookkeeping (caller holds self._guard) ----------------------

    def _add_edge(self, graph: Dict[Any, Set[Any]], a: Any, b: Any,
                  kind: str, what: str) -> None:
        if b in graph.get(a, ()):  # seen edge: already checked
            return
        graph.setdefault(a, set()).add(b)
        cycle = self._find_path(graph, b, a)
        if cycle is not None:
            order = " -> ".join(str(node) for node in cycle + [b])
            self._record(Violation(
                kind,
                f"inconsistent acquisition order of {what}: acquiring "
                f"'{b}' while holding '{a}' closes the cycle "
                f"[{order}] — two threads taking these in opposite "
                "order can deadlock",
                threading.current_thread().name), locked=True)

    @staticmethod
    def _find_path(graph: Dict[Any, Set[Any]], start: Any,
                   goal: Any) -> Optional[List[Any]]:
        """DFS path ``start -> ... -> goal`` through ``graph``."""
        stack: List[Tuple[Any, List[Any]]] = [(start, [start])]
        seen: Set[Any] = set()
        while stack:
            node, path = stack.pop()
            if node == goal:
                return path
            if node in seen:
                continue
            seen.add(node)
            for nxt in sorted(graph.get(node, ()), key=repr):
                stack.append((nxt, path + [nxt]))
        return None

    def _record(self, violation: Violation,
                locked: bool = False) -> None:
        target = self.warnings if violation.kind == "resource-order" \
            else self.violations
        if locked:
            target.append(violation)
        else:
            with self._guard:
                target.append(violation)


#: the installed instance, if any
_ACTIVE: Optional[LockOrderSanitizer] = None
_ACTIVE_GUARD = threading.Lock()


def current() -> Optional[LockOrderSanitizer]:
    """The installed sanitizer, or ``None``."""
    return _ACTIVE


def install(sanitizer: Optional[LockOrderSanitizer] = None) \
        -> LockOrderSanitizer:
    """Install (or return the already-installed) global sanitizer."""
    global _ACTIVE
    with _ACTIVE_GUARD:
        if _ACTIVE is not None:
            return _ACTIVE
        _ACTIVE = sanitizer if sanitizer is not None \
            else LockOrderSanitizer()
        _ACTIVE.install()
        return _ACTIVE


def uninstall() -> None:
    """Remove the global sanitizer's patches, if installed."""
    global _ACTIVE
    with _ACTIVE_GUARD:
        if _ACTIVE is not None:
            _ACTIVE.uninstall()
            _ACTIVE = None


def ensure_installed_from_env() -> Optional[LockOrderSanitizer]:
    """Install iff ``REPRO_SANITIZE`` is set; used by CompliantDB."""
    if env_enabled():
        return install()
    return None
