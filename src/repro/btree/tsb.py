"""Time-split B+-tree (Section VI, after Lomet & Salzberg's TSB-tree).

A TSB-tree leaf that overflows is split **on key** or **on time** depending
on the *split threshold*: let ``f`` be the fraction of distinct keys among
the leaf's entries.  If ``f < threshold`` the leaf is **time-split** — its
historical versions migrate to a write-once historical page — otherwise it
is **key-split** like a normal B+-tree leaf.  Heavily updated pages (small
``f``) therefore shed history to WORM, while insert-mostly pages (large
``f``) split normally.  (The paper's prose states the rule both ways in
different sentences; we implement the direction consistent with its
quantitative discussion of Figures 4(a)/4(b) — see EXPERIMENTS.md.)

This reproduction simplifies the classic two-dimensional TSB index: live
leaves are indexed by key only, and the engine keeps a **historical
directory** mapping each migrated page's WORM reference to the key range
and time horizon it covers (the role the (key, time) interior index plays
in a full TSB-tree).  A time split keeps the **newest version of each key**
(plus any not-yet-stamped version, which might still be rolled back) on
the live page and moves every superseded version to the historical page.
Temporal queries that reach past the live horizon consult the directory.
The split policy — which is what drives the live/historic page counts of
Fig. 4 — is unchanged; see DESIGN.md §6.

Historical pages are immutable once written, never split again, and are
exempt from subsequent audits once the auditor has verified the migration.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ..common.errors import ConfigError
from ..storage.buffer import BufferCache
from ..storage.page import LEAF, Page
from ..storage.record import TupleVersion
from .events import TimeSplitEvent
from .tree import BPlusTree

#: resolves a tuple's commit time (None while its txn is uncommitted)
ResolveStart = Callable[[TupleVersion], Optional[int]]
#: persists a historical page; returns its WORM reference
MigrateCallback = Callable[[TimeSplitEvent], str]


class TSBTree(BPlusTree):
    """B+-tree whose leaves may split on time, migrating history to WORM."""

    def __init__(self, buffer: BufferCache, root_pgno: int, page_size: int,
                 relation_id: int, split_threshold: float,
                 now: Callable[[], int], resolve_start: ResolveStart,
                 migrate: MigrateCallback, assign_seq: bool = False):
        super().__init__(buffer, root_pgno, page_size, relation_id,
                         assign_seq=assign_seq)
        if not 0.0 <= split_threshold <= 1.0:
            raise ConfigError("split_threshold must be in [0, 1]")
        self.split_threshold = split_threshold
        self._now = now
        self._resolve_start = resolve_start
        self._migrate = migrate
        #: counters for the Fig. 4 benchmarks
        self.time_splits = 0
        self.key_splits = 0

    @classmethod
    def create_tsb(cls, buffer: BufferCache, page_size: int,
                   relation_id: int, split_threshold: float,
                   now: Callable[[], int], resolve_start: ResolveStart,
                   migrate: MigrateCallback,
                   assign_seq: bool = False) -> "TSBTree":
        """Allocate an empty TSB-tree with a fixed root page."""
        root = buffer.new_page(LEAF)
        return cls(buffer, root.pgno, page_size, relation_id,
                   split_threshold, now, resolve_start, migrate,
                   assign_seq=assign_seq)

    # -- split policy ----------------------------------------------------------------

    def _split_leaf(self, leaf: Page, path) -> None:
        if self._should_time_split(leaf):
            performed = self._time_split(leaf)
            if performed:
                self.time_splits += 1
                if leaf.fits(self._page_size):
                    return
                # history alone did not free enough room: key-split too
        self.key_splits += 1
        self._key_split_leaf(leaf, path)

    def _should_time_split(self, leaf: Page) -> bool:
        if not leaf.entries:
            return False
        distinct = len({e.key for e in leaf.entries})
        fraction = distinct / len(leaf.entries)
        return fraction < self.split_threshold

    def _time_split(self, leaf: Page) -> bool:
        """Move superseded stamped versions to a historical WORM page.

        Returns False when the leaf has no migratable history (the caller
        then key-splits instead).
        """
        hist, live = self._partition(leaf.entries)
        if not hist:
            return False
        event = TimeSplitEvent(relation_id=self.relation_id,
                               leaf_pgno=leaf.pgno,
                               split_time=self._now(),
                               hist_entries=hist, live_entries=live)
        self._migrate(event)
        leaf.entries = live
        self._buffer.mark_dirty(leaf)
        return True

    def _partition(self, entries: List[TupleVersion]
                   ) -> Tuple[List[TupleVersion], List[TupleVersion]]:
        """(historical, live) partition of a leaf's entries.

        An entry is historical iff it is stamped and a later *stamped*
        version of the same key exists — a superseded version whose
        successor is durable.  Unstamped entries (uncommitted, or committed
        but not yet lazily timestamped) always stay live: they may still be
        rolled back or must remain reachable for the stamper, and a version
        superseded only by an unstamped write must not migrate either, since
        that write may abort.
        """
        hist: List[TupleVersion] = []
        live: List[TupleVersion] = []
        group: List[TupleVersion] = []

        def flush_group() -> None:
            last_stamped = None
            for entry in reversed(group):
                if entry.stamped:
                    last_stamped = entry
                    break
            for entry in group:
                if entry.stamped and entry is not last_stamped:
                    hist.append(entry)
                else:
                    live.append(entry)

        for entry in entries:
            if group and group[-1].key != entry.key:
                flush_group()
                group = []
            group.append(entry)
        if group:
            flush_group()
        return hist, live
