"""A B+-tree over the buffer cache, storing tuple versions.

Entries are :class:`~repro.storage.record.TupleVersion` objects ordered by
``(key, start)``, so all versions of a tuple sit together in version order —
the transaction-time layout of Section II where "the different versions of a
tuple … are threaded together on the page".

Design points relevant to the reproduction:

* **The root page number never changes.**  A root split moves the root's
  contents into two fresh children; the catalog can therefore store a
  relation's root permanently.
* **Split events** fire for every key/root split so the compliance plugin
  can append PAGE_SPLIT records to the WORM log.
* **Atomic flush groups**: every split registers the pages it touched with
  the buffer cache so a crash can never expose a half-split tree (DESIGN.md
  §6).
* **No merge/rebalance on underflow** — like many production engines,
  deletion (vacuum) leaves pages sparse; a page is reclaimed only when it
  empties completely.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Callable, List, Optional, Tuple

from ..common.errors import (DuplicateKeyError, KeyNotFoundError,
                             PageFullError, StorageError)
from ..storage.buffer import BufferCache
from ..storage.page import INTERNAL, LEAF, NO_PAGE, Page
from ..storage.record import TupleVersion
from .events import SplitEvent

MIN_START = -(2 ** 63)
MAX_START = 2 ** 63 - 1

SplitListener = Callable[[SplitEvent], None]


def _pinned_op(method):
    """Pin every page an operation touches; unpin on exit (reentrant)."""
    def wrapper(self, *args, **kwargs):
        outer = getattr(self, "_pinned_pgnos", None)
        self._pinned_pgnos = []
        try:
            return method(self, *args, **kwargs)
        finally:
            for pgno in self._pinned_pgnos:
                self._buffer.unpin(pgno)
            self._pinned_pgnos = outer
            if outer is None:
                # outermost operation finished: nothing pinned by this
                # tree, so over-capacity split groups can flush atomically
                self._buffer.maybe_evict()
    wrapper.__name__ = method.__name__
    wrapper.__doc__ = method.__doc__
    return wrapper


class BPlusTree:
    """One relation's primary storage structure."""

    def __init__(self, buffer: BufferCache, root_pgno: int, page_size: int,
                 relation_id: int, assign_seq: bool = False):
        self._buffer = buffer
        self.root_pgno = root_pgno
        self._page_size = page_size
        self.relation_id = relation_id
        #: assign tuple order numbers on insert (hash-page-on-read mode)
        self.assign_seq = assign_seq
        self.split_listeners: List[SplitListener] = []

    # -- class-level helpers ---------------------------------------------------------

    @classmethod
    def create(cls, buffer: BufferCache, page_size: int, relation_id: int,
               assign_seq: bool = False) -> "BPlusTree":
        """Allocate an empty tree (a single empty leaf as the fixed root)."""
        root = buffer.new_page(LEAF)
        return cls(buffer, root.pgno, page_size, relation_id,
                   assign_seq=assign_seq)

    # -- descent ----------------------------------------------------------------------

    def _descend(self, key: bytes, start: int
                 ) -> Tuple[Page, List[Tuple[Page, int]]]:
        """Walk root→leaf for (key, start); returns (leaf, internal path).

        The path lists each internal page with the child index taken.
        Pages on the path are pinned; callers must run inside
        :meth:`_pinned` (all public methods do).
        """
        probe = (key, start)
        page = self._get(self.root_pgno)
        path: List[Tuple[Page, int]] = []
        while page.is_internal():
            idx = bisect_right(page.seps, probe)
            path.append((page, idx))
            page = self._get(page.children[idx])
        return page, path

    def _get(self, pgno: int) -> Page:
        page = self._buffer.get(pgno)
        self._buffer.pin(pgno)
        self._pinned_pgnos.append(pgno)
        return page

    def _release(self, page: Page) -> None:
        """Drop one pin early — used by chain walkers so a scan over a
        long leaf chain never pins more than a couple of pages at once."""
        try:
            self._pinned_pgnos.remove(page.pgno)
        except ValueError:
            return
        self._buffer.unpin(page.pgno)

    # -- insertion ----------------------------------------------------------------------

    @_pinned_op
    def insert(self, record: TupleVersion) -> TupleVersion:
        """Insert a tuple version; returns it (with any assigned seq).

        Raises :class:`DuplicateKeyError` if an entry with the same
        (key, start) exists.
        """
        if record.relation_id != self.relation_id:
            raise StorageError(
                f"tuple for relation {record.relation_id} inserted into "
                f"tree of relation {self.relation_id}")
        leaf, path = self._descend(record.key, record.start)
        slot = leaf.find_slot(record.key, record.start)
        if slot < len(leaf.entries) and \
                leaf.entries[slot].sort_key() == record.sort_key():
            raise DuplicateKeyError(
                f"version (key={record.key!r}, start={record.start}) "
                "already present")
        if self.assign_seq:
            record = record.with_seq(leaf.max_seq() + 1)
        if not leaf.fits(self._page_size, extra=record.encoded_size()) and \
                not leaf.entries:
            raise PageFullError("tuple larger than a page")
        leaf.entries.insert(slot, record)
        self._buffer.mark_dirty(leaf)
        if not leaf.fits(self._page_size):
            self._split_leaf(leaf, path)
        return record

    # -- splits -------------------------------------------------------------------------

    def _split_leaf(self, leaf: Page, path: List[Tuple[Page, int]]) -> None:
        """Overflow handler; subclasses (TSB-tree) override the policy."""
        self._key_split_leaf(leaf, path)

    def _key_split_leaf(self, leaf: Page,
                        path: List[Tuple[Page, int]]) -> None:
        mid = len(leaf.entries) // 2
        if leaf.pgno == self.root_pgno and not path:
            # root leaf split: move everything into two fresh children
            left = self._new_page(LEAF)
            right = self._new_page(LEAF)
            left.entries = leaf.entries[:mid]
            right.entries = leaf.entries[mid:]
            left.next_leaf, right.prev_leaf = right.pgno, left.pgno
            sep = right.entries[0].sort_key()
            leaf.ptype = INTERNAL
            leaf.level = 1
            leaf.entries = []
            leaf.seps = [sep]
            leaf.children = [left.pgno, right.pgno]
            for page in (leaf, left, right):
                self._buffer.mark_dirty(page)
            self._buffer.note_group([leaf.pgno, left.pgno, right.pgno])
            self._emit_split(SplitEvent(
                relation_id=self.relation_id, old_pgno=leaf.pgno,
                left_pgno=left.pgno, right_pgno=right.pgno,
                left_entries=list(left.entries),
                right_entries=list(right.entries),
                parent_pgno=leaf.pgno, sep=sep))
            return

        sibling = self._new_page(LEAF)
        sibling.entries = leaf.entries[mid:]
        leaf.entries = leaf.entries[:mid]
        sibling.next_leaf = leaf.next_leaf
        sibling.prev_leaf = leaf.pgno
        touched = [leaf.pgno, sibling.pgno]
        if leaf.next_leaf != NO_PAGE:
            old_next = self._get(leaf.next_leaf)
            old_next.prev_leaf = sibling.pgno
            self._buffer.mark_dirty(old_next)
            touched.append(old_next.pgno)
        leaf.next_leaf = sibling.pgno
        sep = sibling.entries[0].sort_key()
        for page in (leaf, sibling):
            self._buffer.mark_dirty(page)
        parent = path[-1][0]
        self._emit_split(SplitEvent(
            relation_id=self.relation_id, old_pgno=leaf.pgno,
            left_pgno=leaf.pgno, right_pgno=sibling.pgno,
            left_entries=list(leaf.entries),
            right_entries=list(sibling.entries),
            parent_pgno=parent.pgno, sep=sep))
        self._insert_into_parent(path, sep, sibling.pgno, touched)

    def _insert_into_parent(self, path: List[Tuple[Page, int]],
                            sep: Tuple[bytes, int], child_pgno: int,
                            touched: List[int]) -> None:
        parent, idx = path[-1]
        parent.seps.insert(idx, sep)
        parent.children.insert(idx + 1, child_pgno)
        self._buffer.mark_dirty(parent)
        touched.append(parent.pgno)
        self._buffer.note_group(touched)
        if parent.fits(self._page_size):
            return
        self._split_internal(parent, path[:-1])

    def _split_internal(self, node: Page,
                        path: List[Tuple[Page, int]]) -> None:
        mid = len(node.seps) // 2
        up_sep = node.seps[mid]
        if node.pgno == self.root_pgno and not path:
            left = self._new_page(INTERNAL, level=node.level)
            right = self._new_page(INTERNAL, level=node.level)
            left.seps = node.seps[:mid]
            left.children = node.children[:mid + 1]
            right.seps = node.seps[mid + 1:]
            right.children = node.children[mid + 1:]
            node.level += 1
            node.seps = [up_sep]
            node.children = [left.pgno, right.pgno]
            for page in (node, left, right):
                self._buffer.mark_dirty(page)
            self._buffer.note_group([node.pgno, left.pgno, right.pgno])
            self._emit_split(SplitEvent(
                relation_id=self.relation_id, old_pgno=node.pgno,
                left_pgno=left.pgno, right_pgno=right.pgno, is_index=True,
                parent_pgno=node.pgno, sep=up_sep))
            return
        sibling = self._new_page(INTERNAL, level=node.level)
        sibling.seps = node.seps[mid + 1:]
        sibling.children = node.children[mid + 1:]
        node.seps = node.seps[:mid]
        node.children = node.children[:mid + 1]
        for page in (node, sibling):
            self._buffer.mark_dirty(page)
        parent = path[-1][0]
        self._emit_split(SplitEvent(
            relation_id=self.relation_id, old_pgno=node.pgno,
            left_pgno=node.pgno, right_pgno=sibling.pgno, is_index=True,
            parent_pgno=parent.pgno, sep=up_sep))
        self._insert_into_parent(path, up_sep, sibling.pgno,
                                 [node.pgno, sibling.pgno])

    def _new_page(self, ptype: int, level: int = 0) -> Page:
        page = self._buffer.new_page(ptype, level)
        self._buffer.pin(page.pgno)
        self._pinned_pgnos.append(page.pgno)
        return page

    def _emit_split(self, event: SplitEvent) -> None:
        for listener in self.split_listeners:
            listener(event)

    # -- lookups ------------------------------------------------------------------------

    @_pinned_op
    def get_version(self, key: bytes, start: int) -> Optional[TupleVersion]:
        """Exact (key, start) lookup."""
        leaf, _ = self._descend(key, start)
        slot = leaf.find_slot(key, start)
        if slot < len(leaf.entries):
            entry = leaf.entries[slot]
            if entry.sort_key() == (key, start):
                return entry
        return None

    @_pinned_op
    def page_of(self, key: bytes, start: int) -> Optional[int]:
        """Page number currently holding an exact version, or None."""
        leaf, _ = self._descend(key, start)
        slot = leaf.find_slot(key, start)
        if slot < len(leaf.entries) and \
                leaf.entries[slot].sort_key() == (key, start):
            return leaf.pgno
        return None

    @_pinned_op
    def versions(self, key: bytes) -> List[TupleVersion]:
        """All stored versions of a key, ascending by start."""
        leaf, _ = self._descend(key, MIN_START)
        out: List[TupleVersion] = []
        slot = leaf.find_slot(key, MIN_START)
        while True:
            while slot < len(leaf.entries):
                entry = leaf.entries[slot]
                if entry.key != key:
                    return out
                out.append(entry)
                slot += 1
            if leaf.next_leaf == NO_PAGE:
                return out
            next_leaf = self._get(leaf.next_leaf)
            self._release(leaf)
            leaf = next_leaf
            slot = 0

    @_pinned_op
    def last_version(self, key: bytes) -> Optional[TupleVersion]:
        """The version of ``key`` with the greatest start, if any."""
        leaf, _ = self._descend(key, MAX_START)
        slot = leaf.find_slot(key, MAX_START)
        if slot > 0 and leaf.entries[slot - 1].key == key:
            return leaf.entries[slot - 1]
        # (key, MAX_START) may route past the key's versions when trailing
        # entries were vacuumed; walk back over empty leaves if needed
        if slot == 0:
            while leaf.prev_leaf != NO_PAGE:
                leaf = self._get(leaf.prev_leaf)
                if leaf.entries:
                    if leaf.entries[-1].key == key:
                        return leaf.entries[-1]
                    return None
        return None

    @_pinned_op
    def range_scan(self, lo_key: bytes,
                   hi_key: Optional[bytes]) -> List[TupleVersion]:
        """All versions with lo_key <= key < hi_key (hi None = unbounded)."""
        leaf, _ = self._descend(lo_key, MIN_START)
        out: List[TupleVersion] = []
        slot = leaf.find_slot(lo_key, MIN_START)
        while True:
            while slot < len(leaf.entries):
                entry = leaf.entries[slot]
                if hi_key is not None and entry.key >= hi_key:
                    return out
                out.append(entry)
                slot += 1
            if leaf.next_leaf == NO_PAGE:
                return out
            next_leaf = self._get(leaf.next_leaf)
            self._release(leaf)
            leaf = next_leaf
            slot = 0

    @_pinned_op
    def iter_entries(self) -> List[TupleVersion]:
        """Every entry in the tree, in (key, start) order."""
        leaf, _ = self._descend(b"", MIN_START)
        out: List[TupleVersion] = []
        while True:
            out.extend(leaf.entries)
            if leaf.next_leaf == NO_PAGE:
                return out
            next_leaf = self._get(leaf.next_leaf)
            self._release(leaf)
            leaf = next_leaf

    # -- mutation of existing entries --------------------------------------------------------

    @_pinned_op
    def remove(self, key: bytes, start: int) -> TupleVersion:
        """Physically remove a version (abort undo / vacuum).

        Raises :class:`KeyNotFoundError` if absent.
        """
        leaf, _ = self._descend(key, start)
        slot = leaf.find_slot(key, start)
        if slot >= len(leaf.entries) or \
                leaf.entries[slot].sort_key() != (key, start):
            raise KeyNotFoundError(
                f"version (key={key!r}, start={start}) not found")
        entry = leaf.entries.pop(slot)
        self._buffer.mark_dirty(leaf)
        return entry

    @_pinned_op
    def stamp(self, key: bytes, txn_start: int,
              commit_time: int) -> TupleVersion:
        """Lazy timestamping: replace a txn-id start with the commit time.

        The entry is mutated in place (same slot); the engine's write-write
        conflict rule guarantees the slot position stays sorted.
        """
        leaf, _ = self._descend(key, txn_start)
        slot = leaf.find_slot(key, txn_start)
        if slot >= len(leaf.entries) or \
                leaf.entries[slot].sort_key() != (key, txn_start):
            raise KeyNotFoundError(
                f"unstamped version (key={key!r}, start={txn_start}) "
                "not found")
        stamped = leaf.entries[slot].stamp(commit_time)
        before_ok = slot == 0 or \
            leaf.entries[slot - 1].sort_key() < stamped.sort_key()
        after_ok = slot + 1 >= len(leaf.entries) or \
            stamped.sort_key() < leaf.entries[slot + 1].sort_key()
        if not (before_ok and after_ok):
            raise StorageError(
                "stamping would break page sort order; schedule violated "
                "the write-write conflict rule")
        leaf.entries[slot] = stamped
        self._buffer.mark_dirty(leaf)
        return stamped

    # -- structure inspection -------------------------------------------------------------------

    @_pinned_op
    def leaf_pgnos(self) -> List[int]:
        """Page numbers of all leaves, left to right."""
        leaf, _ = self._descend(b"", MIN_START)
        out = [leaf.pgno]
        while leaf.next_leaf != NO_PAGE:
            next_leaf = self._get(leaf.next_leaf)
            self._release(leaf)
            leaf = next_leaf
            out.append(leaf.pgno)
        return out

    @_pinned_op
    def all_pgnos(self) -> List[int]:
        """Page numbers of every page in the tree (BFS order)."""
        out: List[int] = []
        queue = [self.root_pgno]
        while queue:
            pgno = queue.pop(0)
            out.append(pgno)
            page = self._get(pgno)
            if page.is_internal():
                queue.extend(page.children)
            self._release(page)
        return out

    @_pinned_op
    def height(self) -> int:
        """Levels from root to leaf (1 for a single-leaf tree)."""
        page = self._get(self.root_pgno)
        levels = 1
        while page.is_internal():
            page = self._get(page.children[0])
            levels += 1
        return levels

    def entry_count(self) -> int:
        """Total entries in the tree."""
        return len(self.iter_entries())
