"""Structural integrity checking for B+-trees (Section IV-C).

The auditor "must also check that the slot pointers on the page are set up
correctly, the tuples are in sorted order across the pages …, the different
versions of a tuple are all threaded together in commit-time order …, and
all other stored metadata is correct", and that "the keys and pointers in
internal nodes are consistent with the leaf nodes".  This module is that
integrity checker.  It reads pages through a caller-supplied fetch function
so the auditor can run it directly against the on-disk bytes, bypassing any
in-memory state an adversary could not have touched anyway.

The checks detect both attacks of Fig. 2: swapped leaf elements (sortedness
violation) and tampered internal-node key values (parent/child bound
violation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..common.errors import PageFormatError
from ..storage.page import INTERNAL, LEAF, NO_PAGE, Page

FetchPage = Callable[[int], Page]

_Bound = Optional[Tuple[bytes, int]]


@dataclass
class IntegrityIssue:
    """One structural problem found in a tree."""

    pgno: int
    kind: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"[{self.kind}] page {self.pgno}: {self.detail}"


def check_leaf_entries(page: Page) -> List[IntegrityIssue]:
    """Per-page checks: strict (key, start) order ⇒ correct slot order and
    version threading in commit-time order."""
    issues: List[IntegrityIssue] = []
    for i in range(1, len(page.entries)):
        prev, cur = page.entries[i - 1], page.entries[i]
        if prev.sort_key() >= cur.sort_key():
            kind = ("version-threading"
                    if prev.key == cur.key else "slot-order")
            issues.append(IntegrityIssue(
                page.pgno, kind,
                f"entry {i - 1} !< entry {i} "
                f"({prev.sort_key()} >= {cur.sort_key()})"))
    return issues


def check_tree(fetch: FetchPage, root_pgno: int) -> List[IntegrityIssue]:
    """Full structural audit of one tree.

    Verifies, for every reachable page: parseability, expected page type
    and level, separator bounds (every child's contents lie inside the key
    interval its parent routes to it), strict in-page ordering, global
    left-to-right key order, and leaf sibling pointers consistent with the
    in-order traversal.
    """
    issues: List[IntegrityIssue] = []
    leaves_in_order: List[Page] = []

    def walk(pgno: int, lo: _Bound, hi: _Bound,
             expected_level: Optional[int]) -> None:
        try:
            page = fetch(pgno)
        except PageFormatError as exc:
            issues.append(IntegrityIssue(pgno, "unparseable", str(exc)))
            return
        if page.pgno != pgno:
            issues.append(IntegrityIssue(
                pgno, "pgno-mismatch",
                f"page claims pgno {page.pgno}"))
        if expected_level is not None and page.level != expected_level:
            issues.append(IntegrityIssue(
                pgno, "level",
                f"expected level {expected_level}, found {page.level}"))
        if page.ptype == INTERNAL:
            if len(page.children) != len(page.seps) + 1:
                issues.append(IntegrityIssue(
                    pgno, "fanout",
                    f"{len(page.children)} children for "
                    f"{len(page.seps)} separators"))
                return
            for i in range(1, len(page.seps)):
                if page.seps[i - 1] >= page.seps[i]:
                    issues.append(IntegrityIssue(
                        pgno, "sep-order",
                        f"separator {i - 1} !< separator {i}"))
            for i, sep in enumerate(page.seps):
                if lo is not None and sep <= lo:
                    issues.append(IntegrityIssue(
                        pgno, "sep-bound",
                        f"separator {i} below the parent's lower bound"))
                if hi is not None and sep > hi:
                    issues.append(IntegrityIssue(
                        pgno, "sep-bound",
                        f"separator {i} above the parent's upper bound"))
            child_level = page.level - 1 if page.level > 0 else None
            bounds = [lo] + list(page.seps) + [hi]
            for i, child in enumerate(page.children):
                walk(child, bounds[i], bounds[i + 1], child_level)
        elif page.ptype == LEAF:
            issues.extend(check_leaf_entries(page))
            for i, entry in enumerate(page.entries):
                sk = entry.sort_key()
                if lo is not None and sk < lo:
                    issues.append(IntegrityIssue(
                        pgno, "key-bound",
                        f"entry {i} sorts below the parent separator — "
                        "the Fig. 2(c) attack surface"))
                if hi is not None and sk >= hi:
                    issues.append(IntegrityIssue(
                        pgno, "key-bound",
                        f"entry {i} sorts above the parent separator"))
            leaves_in_order.append(page)
        else:
            issues.append(IntegrityIssue(
                pgno, "page-type", f"unexpected page type {page.ptype}"))

    root = fetch(root_pgno)
    walk(root_pgno, None, None, root.level)

    # leaf chain consistency with the in-order traversal
    for i, leaf in enumerate(leaves_in_order):
        want_prev = leaves_in_order[i - 1].pgno if i > 0 else NO_PAGE
        want_next = (leaves_in_order[i + 1].pgno
                     if i + 1 < len(leaves_in_order) else NO_PAGE)
        if leaf.prev_leaf != want_prev:
            issues.append(IntegrityIssue(
                leaf.pgno, "leaf-chain",
                f"prev pointer {leaf.prev_leaf}, expected {want_prev}"))
        if leaf.next_leaf != want_next:
            issues.append(IntegrityIssue(
                leaf.pgno, "leaf-chain",
                f"next pointer {leaf.next_leaf}, expected {want_next}"))
    # cross-page global order
    previous_last = None
    for leaf in leaves_in_order:
        if not leaf.entries:
            continue
        first = leaf.entries[0].sort_key()
        if previous_last is not None and previous_last >= first:
            issues.append(IntegrityIssue(
                leaf.pgno, "cross-page-order",
                "first entry does not sort after the previous leaf"))
        previous_last = leaf.entries[-1].sort_key()
    return issues
