"""Structure-change events emitted by the B+-trees.

The compliance plugin subscribes to these to write PAGE_SPLIT and MIGRATE
records to the compliance log (Sections V and VI): page splits must be
replayable by the auditor, and time-split migrations move tuples out of the
auditable live set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..storage.record import TupleVersion


@dataclass
class SplitEvent:
    """A key split (or root split) of a data or index page.

    ``old_pgno`` is the page that overflowed.  After the split its entries
    live on ``left_pgno`` and ``right_pgno`` (for a non-root split the left
    page reuses ``old_pgno``; a root split keeps the root page number and
    moves everything into two fresh children).
    """

    relation_id: int
    old_pgno: int
    left_pgno: int
    right_pgno: int
    #: leaf splits: the tuple contents of both result pages
    left_entries: List[TupleVersion] = field(default_factory=list)
    right_entries: List[TupleVersion] = field(default_factory=list)
    #: True when an index (internal) page split
    is_index: bool = False
    #: index page the separator was inserted into (the parent)
    parent_pgno: int = -1
    #: the separator (key, start) routed to the parent
    sep: Optional[Tuple[bytes, int]] = None


@dataclass
class TimeSplitEvent:
    """A time split migrated a leaf's historical versions toward WORM.

    The engine performs the actual WORM write and hands back the file
    reference; the event carries everything the auditor needs to verify the
    migration (hist ∪ live == old state).
    """

    relation_id: int
    leaf_pgno: int
    split_time: int
    hist_entries: List[TupleVersion] = field(default_factory=list)
    live_entries: List[TupleVersion] = field(default_factory=list)
    hist_ref: str = ""
