"""B+-trees: standard, time-split (TSB), and the structural integrity
checker the auditor runs."""

from .events import SplitEvent, TimeSplitEvent
from .integrity import IntegrityIssue, check_leaf_entries, check_tree
from .tree import MAX_START, MIN_START, BPlusTree
from .tsb import TSBTree

__all__ = [
    "BPlusTree", "IntegrityIssue", "MAX_START", "MIN_START", "SplitEvent",
    "TSBTree", "TimeSplitEvent", "check_leaf_entries", "check_tree",
]
