"""Page-based storage: records, slotted pages, pager, buffer cache."""

from .buffer import BufferCache, BufferStats
from .page import (FREE, HEADER_SIZE, INTERNAL, LEAF, META, NO_PAGE,
                   PAGE_MAGIC, Page, parse_page_tuples)
from .pager import Pager, PagerStats
from .record import RECORD_HEADER_SIZE, TupleVersion

__all__ = [
    "BufferCache", "BufferStats", "FREE", "HEADER_SIZE", "INTERNAL", "LEAF",
    "META", "NO_PAGE", "PAGE_MAGIC", "Page", "Pager", "PagerStats",
    "RECORD_HEADER_SIZE", "TupleVersion", "parse_page_tuples",
]
