"""Slotted pages: the on-disk unit the compliance plugin inspects.

A :class:`Page` is the parsed, in-memory form of one fixed-size disk page.
The buffer cache hands :class:`Page` objects to the B+-tree layer; ``pread``
parses raw bytes into a page and ``pwrite`` serialises it back.  The
compliance plugin works on the *raw bytes* at the pread/pwrite seam and
re-parses them with :meth:`Page.from_bytes`, exactly like the paper's plugin
that "parses the page [and] finds the tuples that are present in the
buffer-cache page but not on the disk page".

Page kinds
----------
* ``LEAF`` — sorted :class:`~repro.storage.record.TupleVersion` entries plus
  (for time-split B+-trees) the chain of WORM references to historical pages
  split off this leaf.
* ``INTERNAL`` — separator keys and child page numbers.
* ``META`` — page 0: engine bootstrap metadata (catalog root, freelist).
* ``FREE`` — vacated page awaiting reuse.

The physical order of leaf entries *is* the slot order: a legitimate engine
always stores them sorted by (key, start), so the auditor's page-integrity
check (Section IV-C) verifies sortedness, version threading, and header
consistency directly against the stored order.  The attack of Fig. 2(b) —
swapping two leaf elements — is expressible by reordering the stored
records.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Dict, List, Tuple

from ..common.errors import PageFormatError
from .record import TupleExtent, TupleVersion, scan_extents

PAGE_MAGIC = 0xD81B

META = 0
LEAF = 1
INTERNAL = 2
FREE = 3

NO_PAGE = -1

_HEADER = struct.Struct("<HBBiHHiiQ")
# magic, type, level, pgno, count, flags, next, prev, lsn
HEADER_SIZE = _HEADER.size

_FLAG_HISTORICAL = 0x01

_SEP_HEADER = struct.Struct("<Hqi")   # key length, start, child pgno
_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_I32 = struct.Struct("<i")


class Page:
    """Parsed form of one disk page."""

    __slots__ = ("pgno", "ptype", "level", "historical", "next_leaf",
                 "prev_leaf", "lsn", "entries", "seps", "children",
                 "hist_refs", "meta", "dirty")

    def __init__(self, pgno: int, ptype: int, level: int = 0):
        self.pgno = pgno
        self.ptype = ptype
        self.level = level
        self.historical = False
        self.next_leaf = NO_PAGE
        self.prev_leaf = NO_PAGE
        self.lsn = 0
        #: leaf pages: TupleVersion entries in slot (sorted) order
        self.entries: List[TupleVersion] = []
        #: internal pages: separator (key, start) pairs; len(children) ==
        #: len(seps) + 1
        self.seps: List[Tuple[bytes, int]] = []
        self.children: List[int] = []
        #: leaf pages of time-split trees: WORM file names of historical
        #: pages split off this leaf, oldest first
        self.hist_refs: List[str] = []
        #: META page: JSON-serialisable bootstrap dict
        self.meta: Dict[str, Any] = {}
        self.dirty = False

    # -- predicates -----------------------------------------------------------

    def is_leaf(self) -> bool:
        """Whether this is a leaf page."""
        return self.ptype == LEAF

    def is_internal(self) -> bool:
        """Whether this is an internal index page."""
        return self.ptype == INTERNAL

    # -- size accounting --------------------------------------------------------

    def content_size(self) -> int:
        """Bytes this page's content occupies when serialised (sans header)."""
        if self.ptype == LEAF:
            size = _U16.size  # hist_refs count
            size += sum(_U16.size + len(r.encode("utf-8"))
                        for r in self.hist_refs)
            size += sum(e.encoded_size() for e in self.entries)
            return size
        if self.ptype == INTERNAL:
            size = _I32.size  # leftmost child
            size += sum(_SEP_HEADER.size + len(key) for key, _ in self.seps)
            return size
        if self.ptype == META:
            return _U32.size + len(self._meta_json())
        return 0

    def fits(self, page_size: int, extra: int = 0) -> bool:
        """Whether content plus ``extra`` additional bytes fits the page."""
        return HEADER_SIZE + self.content_size() + extra <= page_size

    # -- serialisation ----------------------------------------------------------

    def to_bytes(self, page_size: int) -> bytes:
        """Serialise to exactly ``page_size`` bytes (zero padded)."""
        if self.ptype == LEAF:
            count = len(self.entries)
            body_parts: List[bytes] = [_U16.pack(len(self.hist_refs))]
            for ref in self.hist_refs:
                raw = ref.encode("utf-8")
                body_parts.append(_U16.pack(len(raw)))
                body_parts.append(raw)
            body_parts.extend(e.to_bytes() for e in self.entries)
            body = b"".join(body_parts)
        elif self.ptype == INTERNAL:
            count = len(self.seps)
            if len(self.children) != count + 1:
                raise PageFormatError(
                    f"internal page {self.pgno}: {len(self.children)} "
                    f"children for {count} separators")
            body_parts = [_I32.pack(self.children[0])]
            for (key, start), child in zip(self.seps, self.children[1:]):
                body_parts.append(_SEP_HEADER.pack(len(key), start, child))
                body_parts.append(key)
            body = b"".join(body_parts)
        elif self.ptype == META:
            raw = self._meta_json()
            count = 0
            body = _U32.pack(len(raw)) + raw
        else:  # FREE
            count = 0
            body = b""

        flags = _FLAG_HISTORICAL if self.historical else 0
        header = _HEADER.pack(PAGE_MAGIC, self.ptype, self.level, self.pgno,
                              count, flags, self.next_leaf, self.prev_leaf,
                              self.lsn)
        raw_page = header + body
        if len(raw_page) > page_size:
            raise PageFormatError(
                f"page {self.pgno} content ({len(raw_page)} B) exceeds page "
                f"size {page_size}")
        return raw_page + b"\x00" * (page_size - len(raw_page))

    @classmethod
    def from_bytes(cls, data: bytes) -> "Page":
        """Parse raw page bytes; raises PageFormatError on malformed input."""
        try:
            magic, ptype, level, pgno, count, flags, nxt, prv, lsn = \
                _HEADER.unpack_from(data, 0)
        except struct.error as exc:
            raise PageFormatError("page shorter than header") from exc
        if magic != PAGE_MAGIC:
            raise PageFormatError(
                f"bad page magic 0x{magic:04x} (page corrupt or not a page)")
        page = cls(pgno, ptype, level)
        page.historical = bool(flags & _FLAG_HISTORICAL)
        page.next_leaf = nxt
        page.prev_leaf = prv
        page.lsn = lsn
        offset = HEADER_SIZE
        if ptype == LEAF:
            (nrefs,) = _U16.unpack_from(data, offset)
            offset += _U16.size
            for _ in range(nrefs):
                (rlen,) = _U16.unpack_from(data, offset)
                offset += _U16.size
                page.hist_refs.append(
                    data[offset:offset + rlen].decode("utf-8"))
                offset += rlen
            for _ in range(count):
                entry, offset = TupleVersion.from_bytes(data, offset)
                page.entries.append(entry)
        elif ptype == INTERNAL:
            (leftmost,) = _I32.unpack_from(data, offset)
            offset += _I32.size
            page.children.append(leftmost)
            for _ in range(count):
                klen, start, child = _SEP_HEADER.unpack_from(data, offset)
                offset += _SEP_HEADER.size
                key = bytes(data[offset:offset + klen])
                if len(key) != klen:
                    raise PageFormatError(
                        f"page {pgno}: truncated separator key")
                offset += klen
                page.seps.append((key, start))
                page.children.append(child)
        elif ptype == META:
            (jlen,) = _U32.unpack_from(data, offset)
            offset += _U32.size
            raw = data[offset:offset + jlen]
            if len(raw) != jlen:
                raise PageFormatError("truncated meta page")
            try:
                page.meta = json.loads(raw.decode("utf-8"))
            except ValueError as exc:
                raise PageFormatError("meta page JSON corrupt") from exc
        elif ptype != FREE:
            raise PageFormatError(f"unknown page type {ptype}")
        return page

    def _meta_json(self) -> bytes:
        return json.dumps(self.meta, sort_keys=True).encode("utf-8")

    # -- leaf helpers -------------------------------------------------------------

    def max_seq(self) -> int:
        """Largest tuple order number currently on this leaf (0 if empty).

        The compliance logger "finds the largest tuple order number on that
        page [and] increments it" when assigning the next one (Section V).
        """
        return max((e.seq for e in self.entries), default=0)

    def find_slot(self, key: bytes, start: int) -> int:
        """Binary-search the slot index for (key, start); insertion point."""
        lo, hi = 0, len(self.entries)
        probe = (key, start)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.entries[mid].sort_key() < probe:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = {META: "meta", LEAF: "leaf", INTERNAL: "internal",
                FREE: "free"}.get(self.ptype, "?")
        n = len(self.entries) if self.ptype == LEAF else len(self.seps)
        return f"Page(pgno={self.pgno}, {kind}, n={n})"


def leaf_tuple_extents(raw: bytes) -> List[TupleExtent]:
    """Tuple byte extents of a raw LEAF page, in slot order, zero-copy.

    The batched hashing fast path: each extent's ``raw`` is a
    ``memoryview`` slice of the page image, byte-for-byte equal to the
    :meth:`TupleVersion.to_bytes` of the parsed record — the encoding on
    the page *is* the canonical encoding.  No :class:`TupleVersion`
    objects are built and no key/payload bytes are copied.

    Raises :class:`PageFormatError` for non-leaf or malformed pages.
    """
    try:
        magic, ptype, _level, _pgno, count, _flags, _nxt, _prv, _lsn = \
            _HEADER.unpack_from(raw, 0)
    except struct.error as exc:
        raise PageFormatError("page shorter than header") from exc
    if magic != PAGE_MAGIC:
        raise PageFormatError(
            f"bad page magic 0x{magic:04x} (page corrupt or not a page)")
    if ptype != LEAF:
        raise PageFormatError(f"page type {ptype} has no tuple extents")
    offset = HEADER_SIZE
    (nrefs,) = _U16.unpack_from(raw, offset)
    offset += _U16.size
    for _ in range(nrefs):
        (rlen,) = _U16.unpack_from(raw, offset)
        offset += _U16.size + rlen
    return scan_extents(raw, offset, count)


def parse_page_tuples(raw: bytes) -> List[TupleVersion]:
    """Parse raw page bytes and return its tuples (empty for non-leaves).

    Convenience for the compliance plugin, which only cares about tuples.
    """
    page = Page.from_bytes(raw)
    return list(page.entries) if page.is_leaf() else []
