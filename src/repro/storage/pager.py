"""Page-level file I/O with pread/pwrite interception hooks.

The paper's compliance functionality is "isolated in a plugin that is
invoked on each pread/pwrite request" of Berkeley DB.  :class:`Pager` is the
seam where that plugin attaches in this reproduction:

* ``read_page`` (pread) fires ``pread_hooks`` with the raw bytes read;
* ``write_page`` (pwrite) fires ``pwrite_hooks`` with the raw bytes about to
  be written — **before** they reach the disk file, matching the paper's
  requirement that "data page writes wait until their corresponding
  NEW_TUPLE and/or STAMP_TRANS records have reached the WORM server".

``read_raw`` / ``write_raw`` bypass the hooks.  ``read_raw`` is what the
plugin itself uses to fetch the old disk image of a page (the "additional
storage server I/O" of Section IV-A) and what the auditor uses to scan the
final state; ``write_raw`` is the adversary's *file editor* — it mutates the
database file without the DBMS noticing, which is exactly the attack surface
of the threat model.
"""

from __future__ import annotations

import os
import time
import warnings
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Tuple

from ..common.errors import PageNotFoundError, StorageError
from ..obs import MetricsRegistry, Observability, PagerStatsView
from .page import META, Page

PreadHook = Callable[[int, bytes], None]
#: batch-aware pread hook: sees a whole prefetch group at once, so a
#: compliance plugin with a digest pool can hash the pages concurrently
PreadBatchHook = Callable[[List[Tuple[int, bytes]]], None]
PwriteHook = Callable[[int, bytes], None]
#: fired after the pwrite hooks but before the physical write — the seam
#: where the compliance plugin places its group-commit durability
#: barrier ("data page writes wait until their corresponding NEW_TUPLE
#: and/or STAMP_TRANS records have reached the WORM server")
PwriteBarrier = Callable[[int], None]


def _spin(delay: float) -> None:
    """Busy-wait for ``delay`` seconds.

    ``time.sleep`` has millisecond-scale jitter that would swamp the
    sub-millisecond I/O latencies being simulated; a calibrated spin is
    deterministic at the cost of CPU (acceptable for benchmarks).
    """
    deadline = time.perf_counter() + delay
    while time.perf_counter() < deadline:
        pass


class PagerStats(PagerStatsView):
    """Deprecated alias for the registry-backed stats view.

    ``Pager.stats`` is now a :class:`~repro.obs.views.PagerStatsView`
    over the pager's metrics registry; constructing a standalone
    ``PagerStats`` wraps a private registry.
    """

    def __init__(self) -> None:
        warnings.warn(
            "PagerStats is deprecated; read Pager.stats (a view over "
            "the repro.obs metrics registry) instead",
            DeprecationWarning, stacklevel=2)
        super().__init__(MetricsRegistry())


class Pager:
    """Fixed-size-page file storage for one database."""

    def __init__(self, path: os.PathLike, page_size: int,
                 sync_writes: bool = False, io_delay: float = 0.0,
                 obs: Optional[Observability] = None):
        self.path = Path(path)
        self.page_size = page_size
        self._sync = sync_writes
        self.obs = obs if obs is not None else Observability()
        self._c_reads = self.obs.registry.counter(
            "pager_reads_total",
            help="raw page reads from the data file")
        self._c_writes = self.obs.registry.counter(
            "pager_writes_total",
            help="hooked page writes to the data file")
        #: simulated per-I/O latency (seconds).  The paper's evaluation ran
        #: against an NFS filer where one page I/O costs orders of
        #: magnitude more than hashing a page; a pure-Python engine loses
        #: that balance, so benchmarks reintroduce it here.  Zero (the
        #: default) disables the simulation.
        self.io_delay = io_delay
        self.pread_hooks: List[PreadHook] = []
        self.pread_batch_hooks: List[PreadBatchHook] = []
        self.pwrite_hooks: List[PwriteHook] = []
        self.pwrite_barriers: List[PwriteBarrier] = []
        self.stats = PagerStatsView(self.obs.registry)
        existing = self.path.exists() and self.path.stat().st_size > 0
        self._file = open(self.path, "r+b" if existing else "w+b")
        if existing:
            size = self.path.stat().st_size
            if size % page_size:
                raise StorageError(
                    f"{self.path}: size {size} is not a multiple of the "
                    f"page size {page_size}")
            self._page_count = size // page_size
        else:
            self._page_count = 0
            meta = Page(0, META)
            meta.meta = {"page_size": page_size}
            self._append_raw(meta.to_bytes(page_size))

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Close the underlying file handle."""
        if not self._file.closed:
            self._file.close()

    @property
    def page_count(self) -> int:
        """Number of pages currently in the file."""
        return self._page_count

    # -- hooked I/O (the DBMS path) ---------------------------------------------

    def read_page(self, pgno: int) -> bytes:
        """pread: return a page's raw bytes, firing pread hooks."""
        raw = self.read_raw(pgno)
        for hook in self.pread_hooks:
            hook(pgno, raw)
        return raw

    def read_pages(self, pgnos: Sequence[int]) -> List[Tuple[int, bytes]]:
        """Batched pread: read several pages, firing hooks once per group.

        Each page is read with the same per-page ``io_delay`` charge and
        counters as :meth:`read_page`.  When a batch-aware hook is
        registered it sees the whole group in one call (and is expected
        to cover the per-page ``pread_hooks`` duties itself — the
        compliance plugin does); otherwise the plain per-page hooks fire
        in order, making the batch observably identical to a loop of
        ``read_page`` calls.
        """
        pairs = [(pgno, self.read_raw(pgno)) for pgno in pgnos]
        if self.pread_batch_hooks:
            for batch_hook in self.pread_batch_hooks:
                batch_hook(pairs)
        else:
            for pgno, raw in pairs:
                for hook in self.pread_hooks:
                    hook(pgno, raw)
        return pairs

    def emit_write_hooks(self, pgno: int, raw: bytes) -> None:
        """Fire the pwrite hooks for a page without writing it.

        Phase 1 of a batched write-back: the buffer cache emits the
        compliance records for *every* page in a flush batch first, so
        the batch's first pwrite barrier drains them all in one WORM
        round-trip (group commit across pages).
        """
        for hook in self.pwrite_hooks:
            hook(pgno, raw)

    def write_page(self, pgno: int, raw: bytes,
                   hooks_done: bool = False) -> None:
        """pwrite: fire pwrite hooks, then write the page to disk.

        Hook-before-write is the ordering guarantee the recovery protocol
        depends on: the compliance records for a page reach WORM before the
        page itself reaches the disk.  ``hooks_done=True`` skips the hooks
        (the caller already ran :meth:`emit_write_hooks` for a batch) but
        still runs the barriers, so no pending record can ride past its
        page's physical write.
        """
        if len(raw) != self.page_size:
            raise StorageError(
                f"page write of {len(raw)} bytes; expected {self.page_size}")
        self._check_pgno(pgno)
        if not hooks_done:
            for hook in self.pwrite_hooks:
                hook(pgno, raw)
        # durability barriers run after every hook has emitted its
        # records, so one flush covers all of them (group commit)
        for barrier in self.pwrite_barriers:
            barrier(pgno)
        if self.io_delay:
            _spin(self.io_delay)
        self._file.seek(pgno * self.page_size)
        self._file.write(raw)
        self._file.flush()
        if self._sync:
            os.fsync(self._file.fileno())
        self._c_writes.inc()

    # -- raw I/O (plugin, auditor, adversary) -------------------------------------

    def read_raw(self, pgno: int) -> bytes:
        """Read a page without firing hooks (plugin/auditor path)."""
        self._check_pgno(pgno)
        if self.io_delay:
            _spin(self.io_delay)
        self._file.seek(pgno * self.page_size)
        raw = self._file.read(self.page_size)
        if len(raw) != self.page_size:
            raise PageNotFoundError(f"short read of page {pgno}")
        self._c_reads.inc()
        return raw

    def write_raw(self, pgno: int, raw: bytes) -> None:
        """Write a page without firing hooks.

        This is the adversary's file editor: the compliance layer never sees
        these bytes go by.  (Also used internally to initialise fresh pages.)
        """
        if len(raw) != self.page_size:
            raise StorageError(
                f"page write of {len(raw)} bytes; expected {self.page_size}")
        self._check_pgno(pgno)
        self._file.seek(pgno * self.page_size)
        self._file.write(raw)
        self._file.flush()

    # -- allocation --------------------------------------------------------------

    def allocate(self) -> int:
        """Extend the file by one zeroed-then-FREE page; return its number."""
        pgno = self._page_count
        from .page import FREE  # local import avoids a cycle at module load
        blank = Page(pgno, FREE)
        self._append_raw(blank.to_bytes(self.page_size))
        return pgno

    def _append_raw(self, raw: bytes) -> None:
        self._file.seek(self._page_count * self.page_size)
        self._file.write(raw)
        self._file.flush()
        self._page_count += 1

    def _check_pgno(self, pgno: int) -> None:
        if not 0 <= pgno < self._page_count:
            raise PageNotFoundError(
                f"page {pgno} out of range (file has {self._page_count})")
