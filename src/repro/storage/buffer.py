"""Buffer cache: LRU page caching with steal and atomic flush groups.

The cache parses pages on miss (pread) and serialises them on flush
(pwrite); both directions run through the :class:`~repro.storage.pager.Pager`
hooks that the compliance plugin taps.

Two behaviours matter to the paper's protocol:

* **steal** — dirty pages of uncommitted transactions may reach disk.  The
  regret-interval checkpoint ("calling db_checkpoint once every regret
  interval", Section VII) flushes *all* dirty pages, so the compliance log
  can contain NEW_TUPLE records for transactions that later abort; the
  ABORT/UNDO machinery exists precisely for this.
* **atomic structure groups** — a B+-tree split dirties several pages
  (leaf, new sibling, parent).  Flushing some but not all of them across a
  crash would physically corrupt the tree, which real engines prevent with
  physiological redo.  This reproduction instead flushes *split groups
  atomically*: the tree registers the set of pages a split touched, and
  flushing any member flushes them all, WAL-first.  See DESIGN.md §6.
"""

from __future__ import annotations

import warnings
from collections import OrderedDict
from typing import Callable, Dict, Iterable, List, Optional, Set

from ..common.errors import BufferError_, PageNotFoundError
from ..obs import BufferStatsView, MetricsRegistry, Observability
from .page import FREE, Page
from .pager import Pager

BeforeFlushHook = Callable[[Page], None]

#: bucket bounds for pages-per-flush-batch (group-commit batch sizes)
_BATCH_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)


class BufferStats(BufferStatsView):
    """Deprecated alias for the registry-backed stats view.

    ``BufferCache.stats`` is now a :class:`~repro.obs.views.
    BufferStatsView` over the cache's metrics registry; constructing a
    standalone ``BufferStats`` wraps a private registry.
    """

    def __init__(self) -> None:
        warnings.warn(
            "BufferStats is deprecated; read BufferCache.stats (a view "
            "over the repro.obs metrics registry) instead",
            DeprecationWarning, stacklevel=2)
        super().__init__(MetricsRegistry())


class BufferCache:
    """LRU cache of parsed pages over a :class:`Pager`."""

    def __init__(self, pager: Pager, capacity_pages: int,
                 obs: Optional[Observability] = None):
        self._pager = pager
        self._capacity = capacity_pages
        #: defaults to the pager's bundle so a standalone cache+pager
        #: pair shares one registry
        self.obs = obs if obs is not None else pager.obs
        registry = self.obs.registry
        self._c_hits = registry.counter(
            "buffer_hits_total",
            help="page requests served from memory")
        self._c_misses = registry.counter(
            "buffer_misses_total",
            help="page requests that read from disk")
        self._c_flushes = registry.counter(
            "buffer_flushes_total", help="dirty pages written back")
        self._c_evictions = registry.counter(
            "buffer_evictions_total",
            help="pages evicted from the cache")
        self._h_batch = registry.histogram(
            "buffer_flush_batch_pages", buckets=_BATCH_BUCKETS,
            help="pages per atomic write-back batch")
        #: low watermark for stealing: once a sweep has to flush dirty
        #: pages, it reclaims this far below capacity so one group-commit
        #: barrier covers a batch of write-backs instead of paying one
        #: WORM round-trip per evicted page
        self._steal_slack = max(1, capacity_pages // 8)
        self._pages: "OrderedDict[int, Page]" = OrderedDict()
        self._pins: Dict[int, int] = {}
        #: pgno -> group id; pages in one group flush together
        self._group_of: Dict[int, int] = {}
        self._groups: Dict[int, Set[int]] = {}
        self._next_group = 1
        #: invoked with a page right before it is serialised to disk;
        #: the engine flushes the WAL up to page.lsn here
        self.before_flush: Optional[BeforeFlushHook] = None
        self.stats = BufferStatsView(registry)

    # -- access ------------------------------------------------------------------

    def get(self, pgno: int) -> Page:
        """Fetch a page, reading and parsing it on a cache miss."""
        page = self._pages.get(pgno)
        if page is not None:
            self._pages.move_to_end(pgno)
            self._c_hits.inc()
            return page
        raw = self._pager.read_page(pgno)  # pread (hooks fire)
        page = Page.from_bytes(raw)
        if page.pgno != pgno:
            raise PageNotFoundError(
                f"page {pgno} on disk claims pgno {page.pgno}")
        self._c_misses.inc()
        # make room first: the page being added must not be the eviction
        # victim before the caller has had a chance to pin it
        self._evict_as_needed()
        self._pages[pgno] = page
        return page

    def prefetch(self, pgnos: Iterable[int]) -> int:
        """Warm the cache: read and parse absent pages as one batch.

        The whole group goes through :meth:`Pager.read_pages`, so a
        compliance plugin with digest workers hashes the pages' ``Hs``
        chains concurrently instead of one at a time — byte-identical
        records, same order in L, less wall-clock per page.  Returns
        the number of pages actually loaded.
        """
        missing = [pgno for pgno in dict.fromkeys(pgnos)
                   if pgno not in self._pages]
        if not missing:
            return 0
        pairs = self._pager.read_pages(missing)
        for pgno, raw in pairs:
            page = Page.from_bytes(raw)
            if page.pgno != pgno:
                raise PageNotFoundError(
                    f"page {pgno} on disk claims pgno {page.pgno}")
            self._c_misses.inc()
            self._evict_as_needed()
            self._pages[pgno] = page
        return len(pairs)

    def new_page(self, ptype: int, level: int = 0) -> Page:
        """Allocate a fresh page and cache it dirty."""
        pgno = self._pager.allocate()
        page = Page(pgno, ptype, level)
        page.dirty = True
        self._evict_as_needed()
        self._pages[pgno] = page
        return page

    def free_page(self, pgno: int) -> None:
        """Mark a page as FREE (vacated); it is rewritten on next flush."""
        page = self.get(pgno)
        page.ptype = FREE
        page.entries = []
        page.seps = []
        page.children = []
        page.hist_refs = []
        page.dirty = True

    # -- pinning -----------------------------------------------------------------

    def pin(self, pgno: int) -> None:
        """Prevent a page from being evicted while an operation holds it."""
        self._pins[pgno] = self._pins.get(pgno, 0) + 1

    def unpin(self, pgno: int) -> None:
        """Release one pin on a page."""
        count = self._pins.get(pgno, 0)
        if count <= 1:
            self._pins.pop(pgno, None)
        else:
            self._pins[pgno] = count - 1

    # -- dirtiness & groups --------------------------------------------------------

    def mark_dirty(self, page: Page) -> None:
        """Flag a cached page as modified."""
        page.dirty = True

    def note_group(self, pgnos: Iterable[int]) -> None:
        """Register pages that must flush atomically (a split's footprint).

        Overlapping groups merge, so chained splits (leaf → parent → root)
        form one group.
        """
        members = set(pgnos)
        gids = {self._group_of[p] for p in members if p in self._group_of}
        for gid in gids:
            members |= self._groups.pop(gid)
        gid = self._next_group
        self._next_group += 1
        self._groups[gid] = members
        for pgno in members:
            self._group_of[pgno] = gid

    # -- flushing ---------------------------------------------------------------

    def _pop_group(self, pgno: int) -> List[int]:
        """Detach and return a page's atomic-group members (or itself)."""
        gid = self._group_of.get(pgno)
        members = sorted(self._groups.pop(gid)) if gid is not None \
            else [pgno]
        for member in members:
            self._group_of.pop(member, None)
        return members

    def _flush_batch(self, pgnos: Iterable[int]) -> None:
        """Write a batch of pages with one group-commit barrier.

        Write-back ordering, batched: phase 1 makes the WAL durable up
        to every page's LSN (``before_flush`` → WAL-before-data) and
        fires the pwrite hooks, emitting the compliance records for the
        *whole* batch; phase 2 writes the page bytes, and the first
        page's pwrite barrier drains all the buffered records in a
        single WORM round-trip — strictly before any batched page
        reaches the disk file.
        """
        dirty = [(member, page) for member in pgnos
                 if (page := self._pages.get(member)) is not None
                 and page.dirty]
        if not dirty:
            return
        with self.obs.tracer.span("buffer.flush_batch",
                                  pages=len(dirty)):
            batch = []
            for member, page in dirty:
                if self.before_flush is not None:
                    self.before_flush(page)
                raw = page.to_bytes(self._pager.page_size)
                self._pager.emit_write_hooks(member, raw)
                batch.append((member, page, raw))
            for member, page, raw in batch:
                self._pager.write_page(member, raw, hooks_done=True)
                page.dirty = False
                self._c_flushes.inc()
        self._h_batch.observe(len(dirty))

    def flush_page(self, pgno: int) -> None:
        """Flush one page (and its whole atomic group) to disk."""
        self._flush_batch(self._pop_group(pgno))

    def flush_all(self) -> int:
        """Checkpoint: flush every dirty page in one group-commit batch.

        Returns pages flushed.
        """
        dirty = [pgno for pgno, page in self._pages.items() if page.dirty]
        batch: List[int] = []
        seen: Set[int] = set()
        for pgno in dirty:
            for member in self._pop_group(pgno):
                if member not in seen:
                    seen.add(member)
                    batch.append(member)
        self._flush_batch(batch)
        return len(dirty)

    def dirty_pgnos(self) -> List[int]:
        """Page numbers of currently dirty cached pages."""
        return [pgno for pgno, page in self._pages.items() if page.dirty]

    # -- crash simulation ----------------------------------------------------------

    def drop_all(self) -> None:
        """Discard the whole cache without flushing — the crash primitive.

        Everything not yet flushed is lost, exactly as if the DBMS process
        died; recovery must reconstruct from the WAL and the disk image.
        """
        self._pages.clear()
        self._pins.clear()
        self._groups.clear()
        self._group_of.clear()

    # -- eviction -----------------------------------------------------------------

    def maybe_evict(self) -> None:
        """Shrink back to capacity; called by the tree after each operation.

        Mid-operation evictions skip pinned pages and any atomic group with
        a pinned member, so the cache can temporarily exceed capacity while
        a split is in flight; this end-of-operation sweep (no pins held)
        restores the bound, flushing split groups atomically.
        """
        self._evict_as_needed()

    def _evict_as_needed(self) -> None:
        if len(self._pages) <= self._capacity:
            return
        # pass 1: evict clean unpinned pages, LRU first
        for pgno in list(self._pages):
            if len(self._pages) <= self._capacity:
                return
            page = self._pages[pgno]
            if page.dirty or self._pins.get(pgno):
                continue
            del self._pages[pgno]
            self._c_evictions.inc()
        # pass 2: steal — pick LRU dirty unpinned victims sufficient to
        # restore capacity, flush them as ONE group-commit batch, then
        # evict.  A page whose atomic group contains a pinned member is
        # skipped: the group may be mid-split and not yet serialisable.
        victims: List[int] = []
        flushing: Set[int] = set()
        target = self._capacity - self._steal_slack
        for pgno in list(self._pages):
            if len(self._pages) - len(victims) <= target:
                break
            if self._pins.get(pgno):
                continue
            if pgno in flushing:
                victims.append(pgno)  # clean once the batch lands
                continue
            gid = self._group_of.get(pgno)
            if gid is not None and any(self._pins.get(member)
                                       for member in self._groups[gid]):
                continue
            flushing.update(self._pop_group(pgno))
            victims.append(pgno)
        self._flush_batch(sorted(flushing))
        for pgno in victims:
            page = self._pages.get(pgno)
            if page is not None and not page.dirty:
                del self._pages[pgno]
                self._c_evictions.inc()
        # every remaining page pinned: allow temporary overflow rather than
        # failing the operation mid-flight
        if len(self._pages) > self._capacity * 4:
            raise BufferError_(
                "buffer cache wildly over capacity with all pages pinned")
