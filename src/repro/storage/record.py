"""Tuple versions — the unit of storage in the transaction-time DBMS.

Every INSERT/UPDATE/DELETE creates a new physical :class:`TupleVersion`
(Section II): updates leave the old version intact and add a new one with a
later start time; deletes add a special *end-of-life* version.  A version's
``start`` field initially holds the creating **transaction ID** (the paper's
lazy timestamping) and is later replaced by the transaction's **commit
time**; the ``stamped`` flag says which one it currently holds.

``seq`` is the *tuple order number* of the hash-page-on-read refinement
(Section V): a per-page, monotonically increasing insertion counter that lets
the auditor re-derive the exact sequential hash ``Hs`` of a page.

The binary encoding here is both the on-page format (inside slotted pages)
and the canonical form hashed by the auditor and logged in NEW_TUPLE
records, so "tuple bytes on disk" and "tuple bytes on WORM" are directly
comparable.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, replace
from typing import List, NamedTuple, Tuple, Union

from ..common.errors import PageFormatError

_HEADER = struct.Struct("<BHqIHI")  # flags, relation, start, seq, klen, plen

_FLAG_STAMPED = 0x01
_FLAG_EOL = 0x02


@dataclass(frozen=True)
class TupleVersion:
    """One immutable physical version of a tuple.

    Attributes
    ----------
    relation_id:
        Numeric id of the owning relation (catalog-assigned).
    key:
        Order-preserving encoded primary key bytes.
    start:
        Commit time (microseconds) when ``stamped``; otherwise the creating
        transaction's ID (lazy timestamping).
    stamped:
        Whether ``start`` holds a commit time yet.
    eol:
        True for the special end-of-life version recording a deletion.
    seq:
        Tuple order number within its page (0 when the engine runs without
        the hash-page-on-read refinement).
    payload:
        Schema-encoded column values (empty for end-of-life versions).
    """

    relation_id: int
    key: bytes
    start: int
    stamped: bool
    eol: bool
    seq: int
    payload: bytes

    # -- ordering -------------------------------------------------------------

    def sort_key(self) -> Tuple[bytes, int]:
        """B+-tree ordering: by key bytes, then by start (version order)."""
        return (self.key, self.start)

    # -- serialisation --------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Canonical binary encoding (on-page, in NEW_TUPLE records).

        Memoised: instances are immutable, and the encoding sits on hot
        paths (page flushes, read hashing, audits).
        """
        cached = self.__dict__.get("_raw")
        if cached is not None:
            return cached
        flags = (_FLAG_STAMPED if self.stamped else 0) | \
                (_FLAG_EOL if self.eol else 0)
        header = _HEADER.pack(flags, self.relation_id, self.start, self.seq,
                              len(self.key), len(self.payload))
        raw = header + self.key + self.payload
        object.__setattr__(self, "_raw", raw)
        return raw

    @classmethod
    def from_bytes(cls, data: bytes, offset: int = 0
                   ) -> Tuple["TupleVersion", int]:
        """Decode one record; returns (record, next offset)."""
        try:
            flags, relation_id, start, seq, klen, plen = \
                _HEADER.unpack_from(data, offset)
        except struct.error as exc:
            raise PageFormatError("truncated tuple header") from exc
        body_end = offset + _HEADER.size + klen + plen
        if body_end > len(data):
            raise PageFormatError("truncated tuple body")
        key = bytes(data[offset + _HEADER.size:offset + _HEADER.size +
                         klen])
        payload = bytes(data[offset + _HEADER.size + klen:body_end])
        record = cls(relation_id=relation_id, key=key, start=start,
                     stamped=bool(flags & _FLAG_STAMPED),
                     eol=bool(flags & _FLAG_EOL), seq=seq, payload=payload)
        object.__setattr__(record, "_raw", bytes(data[offset:body_end]))
        return record, body_end

    def encoded_size(self) -> int:
        """Size in bytes of :meth:`to_bytes` output."""
        return _HEADER.size + len(self.key) + len(self.payload)

    # -- auditor encodings ----------------------------------------------------

    def identity_bytes(self) -> bytes:
        """Stamped canonical bytes used for the completeness ADD-HASH.

        The auditor always hashes tuples *as if stamped* (it substitutes the
        commit time from STAMP_TRANS records before hashing, Section IV-A),
        so an unstamped on-disk copy and its stamped final form hash equal
        once the substitution is applied.  Raises if called unstamped.
        """
        if not self.stamped:
            raise PageFormatError(
                "identity_bytes requires a stamped tuple; substitute the "
                "commit time first")
        return self.to_bytes()

    def read_hash_bytes(self) -> bytes:
        """Bytes hashed for `Hs` page hashes — the tuple exactly as read.

        Section V: the auditor hashes each tuple "with its transaction ID T
        if the STAMP_TRANS record for T appears later in L; otherwise ...
        with its commit time" — i.e. in whatever stamped state the reading
        transaction saw, which is precisely the current encoding.
        """
        return self.to_bytes()

    # -- lifecycle helpers ------------------------------------------------------

    def stamp(self, commit_time: int) -> "TupleVersion":
        """Return the stamped form of a lazily timestamped version."""
        if self.stamped:
            raise PageFormatError("tuple is already stamped")
        return replace(self, start=commit_time, stamped=True)

    def with_seq(self, seq: int) -> "TupleVersion":
        """Return a copy carrying a tuple order number."""
        return replace(self, seq=seq)

    def version_id(self) -> Tuple[int, bytes, int]:
        """(relation, key, start) triple identifying this version."""
        return (self.relation_id, self.key, self.start)


RECORD_HEADER_SIZE = _HEADER.size


class TupleExtent(NamedTuple):
    """One record's contiguous byte extent on a page, header pre-parsed.

    The batched ``Hs`` fast path (:func:`repro.crypto.batch.seq_hash_page`)
    hashes ``raw`` directly — a zero-copy ``memoryview`` slice of the page
    image — instead of materialising a :class:`TupleVersion` and
    re-encoding it.  ``seq``/``stamped``/``start`` are the three header
    fields the hashing order and commit-time substitution depend on.
    """

    seq: int
    stamped: bool
    start: int
    raw: memoryview


def scan_extents(data: Union[bytes, memoryview], offset: int,
                 count: int) -> List[TupleExtent]:
    """Walk ``count`` records starting at ``offset`` without decoding them.

    Returns the records' byte extents in slot order.  Only the fixed
    header of each record is unpacked; keys and payloads stay inside the
    returned ``memoryview`` slices, so the walk allocates nothing
    proportional to tuple size.  Raises :class:`PageFormatError` on
    truncation, exactly like :meth:`TupleVersion.from_bytes`.
    """
    view = data if isinstance(data, memoryview) else memoryview(data)
    extents: List[TupleExtent] = []
    header_size = _HEADER.size
    length = len(view)
    for _ in range(count):
        try:
            flags, _relation_id, start, seq, klen, plen = \
                _HEADER.unpack_from(view, offset)
        except struct.error as exc:
            raise PageFormatError("truncated tuple header") from exc
        body_end = offset + header_size + klen + plen
        if body_end > length:
            raise PageFormatError("truncated tuple body")
        extents.append(TupleExtent(seq, bool(flags & _FLAG_STAMPED),
                                   start, view[offset:body_end]))
        offset = body_end
    return extents
