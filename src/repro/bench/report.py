"""Formatting and environment helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and
prints it as an ASCII table directly to the terminal (bypassing pytest's
capture), so ``pytest benchmarks/ --benchmark-only | tee bench_output.txt``
records the reproduced series alongside pytest-benchmark's timings.

Scaling knobs (environment variables):

* ``REPRO_BENCH_TXNS`` — transactions per run (default 400; the paper ran
  100 000 on real hardware).
* ``REPRO_BENCH_SCALE`` — ``tiny`` | ``small`` | ``medium`` TPC-C
  population (default ``small``).
"""

from __future__ import annotations

import os
from typing import Iterable, Sequence

from ..tpcc import TPCCScale


def bench_txns(default: int = 400) -> int:
    """Transactions per benchmark run."""
    return int(os.environ.get("REPRO_BENCH_TXNS", default))


def bench_scale() -> TPCCScale:
    """TPC-C population for benchmark runs."""
    name = os.environ.get("REPRO_BENCH_SCALE", "small")
    factory = {"tiny": TPCCScale.tiny, "small": TPCCScale.small,
               "medium": TPCCScale.medium, "full": TPCCScale.full}[name]
    return factory()


def format_table(title: str, headers: Sequence[str],
                 rows: Iterable[Sequence], note: str = "") -> str:
    """Render an ASCII table like the ones in the paper's evaluation."""
    rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = [f"\n== {title} ==",
             " | ".join(h.ljust(w) for h, w in zip(headers, widths)),
             sep]
    lines.extend(" | ".join(c.ljust(w) for c, w in zip(row, widths))
                 for row in rows)
    if note:
        lines.append(f"   note: {note}")
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def emit(capsys, text: str) -> None:
    """Print to the real terminal even under pytest capture."""
    if capsys is not None:
        with capsys.disabled():
            print(text)
    else:  # pragma: no cover - direct script use
        print(text)
