"""Benchmark-harness support: table formatting and workload builders."""

from .report import bench_scale, bench_txns, emit, format_table
from .workloads import REGRET, TXN_GAP, build_db, make_driver

__all__ = ["REGRET", "TXN_GAP", "bench_scale", "bench_txns", "build_db",
           "emit", "format_table", "make_driver"]
