"""Shared workload construction for the benchmark harness."""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional

from ..common.clock import SimulatedClock, minutes, seconds
from ..common.config import ComplianceConfig, ComplianceMode, DBConfig, \
    EngineConfig, ObsConfig
from ..core import CompliantDB
from ..tpcc import TPCCDriver, TPCCLoader, TPCCScale

#: the paper's regret interval in its experiments
REGRET = minutes(5)
#: simulated gap between transactions — 100k txns in 2-3 hours ≈ 0.1 s
TXN_GAP = seconds(0.1)


def build_db(path: Path, mode: ComplianceMode, scale: TPCCScale,
             buffer_pages: int, page_size: int = 2048, seed: int = 42,
             worm_migration: bool = False,
             split_threshold: float = 0.5,
             obs_enabled: bool = True,
             io_delay: Optional[float] = None,
             hash_workers: int = 0) -> CompliantDB:
    """Create and populate a TPC-C database in the given architecture.

    ``obs_enabled=False`` wires in the no-op registry/tracer — the
    baseline for the instrumentation-overhead benchmark.  ``io_delay``
    overrides the ``REPRO_IO_DELAY`` environment default.
    ``hash_workers`` sizes the engine's digest pool (0 = inline).
    """
    clock = SimulatedClock()
    if io_delay is None:
        io_delay = float(os.environ.get("REPRO_IO_DELAY", "0.0002"))
    config = DBConfig(
        engine=EngineConfig(page_size=page_size,
                            buffer_pages=buffer_pages,
                            io_delay_seconds=io_delay,
                            hash_workers=hash_workers),
        compliance=ComplianceConfig(mode=mode,
                                    regret_interval=REGRET,
                                    worm_migration=worm_migration,
                                    split_threshold=split_threshold),
        obs=ObsConfig(enabled=obs_enabled))
    db = CompliantDB.create(path, config, clock=clock)
    TPCCLoader(db, scale, seed=seed).load()
    return db


def make_driver(db: CompliantDB, scale: TPCCScale,
                seed: int = 7) -> TPCCDriver:
    """A driver with the paper-equivalent simulated transaction pacing."""
    return TPCCDriver(db, scale, seed=seed, simulated_txn_gap=TXN_GAP)
