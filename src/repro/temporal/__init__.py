"""The transaction-time storage engine: catalog, history, engine."""

from .catalog import (CATALOG_RELATION_ID, CATALOG_SCHEMA, RelationInfo,
                      schema_from_json, schema_to_json)
from .engine import Engine, RecoveryReport, VersionView
from .history import (HistoricalDirectory, HistPageRef, decode_hist_page,
                      encode_hist_page)

__all__ = [
    "CATALOG_RELATION_ID", "CATALOG_SCHEMA", "Engine",
    "HistoricalDirectory", "HistPageRef", "RecoveryReport", "RelationInfo",
    "VersionView", "decode_hist_page", "encode_hist_page",
    "schema_from_json", "schema_to_json",
]
