"""Historical-page directory and WORM page encoding (Section VI).

When a time split migrates a leaf's superseded versions to WORM, the engine
records a :class:`HistPageRef` in this directory — the reproduction's
stand-in for the (key, time) interior index of a full TSB-tree.  Each entry
remembers which relation, key range, and time horizon a migrated WORM page
covers, so temporal queries can find old versions and the shredder can
locate expired tuples that live on WORM.

The directory itself sits on ordinary read/write media (a JSON file next to
the database).  It is *not* trusted: the auditor independently verifies
every migration against the MIGRATE records on the compliance log, so an
adversary editing the directory gains nothing undetectable.
"""

from __future__ import annotations

import json
import struct
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import List, Optional

from ..common.errors import StorageError
from ..storage.record import TupleVersion

_COUNT = struct.Struct("<I")
_HIST_MAGIC = b"RHP1"  # repro historical page, version 1


@dataclass
class HistPageRef:
    """Directory entry for one migrated historical page on WORM."""

    ref: str               # WORM file name
    relation_id: int
    leaf_pgno: int         # live leaf it was split from
    split_time: int
    lo_key: str            # hex-encoded key bounds (inclusive)
    hi_key: str
    count: int             # number of tuple versions on the page

    def covers_key(self, key: bytes) -> bool:
        """Whether this page may hold versions of ``key``."""
        return bytes.fromhex(self.lo_key) <= key <= bytes.fromhex(self.hi_key)


def encode_hist_page(entries: List[TupleVersion]) -> bytes:
    """Serialise a historical page for WORM storage."""
    parts = [_HIST_MAGIC, _COUNT.pack(len(entries))]
    parts.extend(e.to_bytes() for e in entries)
    return b"".join(parts)


def decode_hist_page(raw: bytes) -> List[TupleVersion]:
    """Parse a WORM historical page back into tuple versions."""
    if raw[:4] != _HIST_MAGIC:
        raise StorageError("not a historical page (bad magic)")
    (count,) = _COUNT.unpack_from(raw, 4)
    entries: List[TupleVersion] = []
    offset = 4 + _COUNT.size
    for _ in range(count):
        entry, offset = TupleVersion.from_bytes(raw, offset)
        entries.append(entry)
    if offset != len(raw):
        raise StorageError("trailing bytes after historical page entries")
    return entries


class HistoricalDirectory:
    """Persistent index of all migrated historical pages."""

    def __init__(self, path: Path):
        self._path = Path(path)
        self._entries: List[HistPageRef] = []
        self._next_seq = 1
        self._load()

    # -- mutation -------------------------------------------------------------

    def next_ref(self, relation_id: int) -> str:
        """Reserve the WORM file name for the next migrated page."""
        ref = f"hist/r{relation_id}-{self._next_seq:06d}"
        self._next_seq += 1
        return ref

    def add(self, entry: HistPageRef) -> None:
        """Record a migrated page and persist the directory."""
        self._entries.append(entry)
        self._save()

    def replace(self, old_ref: str, new_entry: Optional[HistPageRef]) -> None:
        """Swap a page's entry after shredding re-migration (None removes)."""
        self._entries = [e for e in self._entries if e.ref != old_ref]
        if new_entry is not None:
            self._entries.append(new_entry)
        self._save()

    # -- queries --------------------------------------------------------------

    def all_entries(self) -> List[HistPageRef]:
        """Every directory entry (copy)."""
        return list(self._entries)

    def for_relation(self, relation_id: int) -> List[HistPageRef]:
        """Entries of one relation, in migration order."""
        return [e for e in self._entries if e.relation_id == relation_id]

    def lookup(self, relation_id: int, key: bytes) -> List[HistPageRef]:
        """Pages that may contain versions of (relation, key)."""
        return [e for e in self._entries
                if e.relation_id == relation_id and e.covers_key(key)]

    def has_ref(self, ref: str) -> bool:
        """Whether a WORM reference is already registered."""
        return any(e.ref == ref for e in self._entries)

    def page_count(self, relation_id: Optional[int] = None) -> int:
        """Number of historical pages (optionally for one relation)."""
        if relation_id is None:
            return len(self._entries)
        return len(self.for_relation(relation_id))

    # -- persistence ------------------------------------------------------------

    def _save(self) -> None:
        blob = {"next_seq": self._next_seq,
                "entries": [asdict(e) for e in self._entries]}
        self._path.write_text(json.dumps(blob), encoding="utf-8")

    def _load(self) -> None:
        if not self._path.exists():
            return
        blob = json.loads(self._path.read_text(encoding="utf-8"))
        self._next_seq = blob["next_seq"]
        self._entries = [HistPageRef(**e) for e in blob["entries"]]
