"""The transaction-time storage engine (the Berkeley-DB-equivalent layer).

:class:`Engine` ties together the pager, buffer cache, WAL, lock table,
transaction manager, B+-trees (plain or time-split), the system catalog,
and the historical directory.  It implements the transaction-time data
model of Section II:

* every INSERT/UPDATE/DELETE writes a **new tuple version**; deletes write
  an *end-of-life* version; nothing is overwritten in place;
* new versions carry their transaction ID as a temporary start time and are
  **lazily timestamped** with the commit time afterwards (Salzberg's
  timestamping-after-commit, as in the paper);
* temporal reads (``at=...``) resolve any past state.

Concurrency model: strict 2PL on (relation, key) with *first-writer-wins*
semantics — a transaction that writes a key whose newest version has a
start time at or after the transaction's begin raises
:class:`TransactionAborted` (the caller aborts).  This keeps version order
physically monotone per key, which is what lets lazy timestamping stamp a
tuple **in place** without ever repositioning it (and therefore without
generating spurious compliance-log traffic).  A transaction may write each
key at most once; the TPC-C driver honours this.

Crash recovery is logical: the WAL's INSERT/PHYS_DELETE/TIME_SPLIT records
are idempotently re-applied for committed transactions and rolled back for
losers, after which committed-but-unstamped tuples are re-stamped.  See
DESIGN.md §6 for the atomic-flush-group rule that keeps the on-disk tree
structurally sound under partial flushes.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..btree import BPlusTree, TSBTree
from ..btree.events import SplitEvent, TimeSplitEvent
from ..common.clock import SimulatedClock
from ..common.codec import Schema, decode_key, encode_key
from ..common.config import EngineConfig
from ..crypto.pool import DigestPool
from ..common.errors import (ConfigError, DuplicateKeyError,
                             KeyNotFoundError, RecoveryError,
                             RelationNotFoundError, TransactionAborted,
                             TransactionError, TransactionStateError)
from ..obs import Observability
from ..storage.buffer import BufferCache
from ..storage.page import FREE, LEAF
from ..storage.pager import Pager
from ..storage.record import TupleVersion
from ..txn import LockMode, Transaction, TransactionManager, WriteOp
from ..wal import TransactionLog, WalRecord, WalRecordType, analyse
from ..worm import WormServer
from .catalog import CATALOG_RELATION_ID, CATALOG_SCHEMA, RelationInfo
from .history import (HistoricalDirectory, HistPageRef, decode_hist_page,
                      encode_hist_page)

MigrationListener = Callable[[TimeSplitEvent], None]


@dataclass
class VersionView:
    """One tuple version as seen by a temporal query."""

    start: Optional[int]        # resolved commit time; None if uncommitted
    eol: bool
    row: Optional[Dict[str, Any]]   # decoded columns (None for end-of-life)
    raw: TupleVersion = field(repr=False, default=None)


@dataclass
class RecoveryReport:
    """What crash recovery found and did (consumed by the compliance layer).
    """

    committed: Dict[int, int] = field(default_factory=dict)
    aborted: Set[int] = field(default_factory=set)
    losers: Set[int] = field(default_factory=set)
    redone: int = 0
    undone: int = 0
    restamped: int = 0
    migrations_reapplied: int = 0
    phys_deletes_reapplied: int = 0


class Engine:
    """The storage engine for one database directory."""

    def __init__(self, data_dir: os.PathLike, clock: SimulatedClock,
                 config: Optional[EngineConfig] = None,
                 worm: Optional[WormServer] = None,
                 assign_seq: bool = False, worm_migration: bool = False,
                 split_threshold: float = 0.5,
                 worm_retention: Optional[int] = None,
                 obs: Optional[Observability] = None,
                 _create: bool = False):
        self.data_dir = Path(data_dir)
        self.clock = clock
        self.config = config if config is not None else EngineConfig()
        self.config.validate()
        self.worm = worm
        self.assign_seq = assign_seq
        self.worm_migration = worm_migration
        self.split_threshold = split_threshold
        self.worm_retention = worm_retention
        if worm_migration and worm is None:
            raise ConfigError("WORM migration requires a WORM server")

        self.obs = obs if obs is not None else Observability()
        registry = self.obs.registry
        self._c_checkpoints = registry.counter(
            "engine_checkpoints_total",
            help="checkpoints (WAL flush + full dirty-page write-back)")
        self._c_stamps = registry.counter(
            "engine_stamps_applied_total",
            help="lazy commit-time stamps applied to tuples")
        self._c_splits_leaf = registry.counter(
            "btree_splits_total", help="B+-tree page splits", kind="leaf")
        self._c_splits_index = registry.counter(
            "btree_splits_total", help="B+-tree page splits",
            kind="index")
        self._c_time_splits = registry.counter(
            "btree_time_splits_total",
            help="time splits migrating history to WORM pages")

        #: shared digest workers (``hash_workers`` knob); the compliance
        #: plugin and auditors pick this up from the engine so one pool
        #: serves the whole database
        self.digest_pool = DigestPool(self.config.hash_workers,
                                      registry=registry)

        self.data_dir.mkdir(parents=True, exist_ok=True)
        self.pager = Pager(self.data_dir / "data.db", self.config.page_size,
                           sync_writes=self.config.sync_writes,
                           io_delay=self.config.io_delay_seconds,
                           obs=self.obs)
        self.buffer = BufferCache(self.pager, self.config.buffer_pages,
                                  obs=self.obs)
        self.wal = TransactionLog(self.data_dir / "wal.log",
                                  sync_writes=self.config.sync_writes)
        self.buffer.before_flush = lambda page: self.wal.flush()
        self.txns = TransactionManager(clock, self.wal, obs=self.obs)
        self.txns.undo_callback = self._undo_transaction
        self.txns.on_commit.append(self._after_commit)
        self.histdir = HistoricalDirectory(self.data_dir / "histdir.json")

        #: shared by every tree, so a listener registered once sees all
        #: splits of all relations
        self._split_listeners: List[Callable[[SplitEvent], None]] = []
        self._split_listeners.append(self._count_split)
        self.migration_listeners: List[MigrationListener] = []

        self._relations: Dict[str, RelationInfo] = {}
        self._by_id: Dict[int, RelationInfo] = {}
        self._pending_stamps: List[Tuple[int, bytes, int, int]] = []
        self.last_commit_time = 0

        if _create:
            self._bootstrap()
        else:
            self._load_meta()
        self._catalog_tree = self._make_tree(
            RelationInfo("__catalog__", CATALOG_RELATION_ID,
                         self._catalog_root, False, CATALOG_SCHEMA))
        if not _create:
            self._reload_relations()

    # -- construction ----------------------------------------------------------

    @classmethod
    def create(cls, data_dir: os.PathLike, clock: SimulatedClock,
               **kwargs) -> "Engine":
        """Create a fresh database under ``data_dir``."""
        if (Path(data_dir) / "data.db").exists():
            raise ConfigError(f"database already exists in {data_dir}")
        return cls(data_dir, clock, _create=True, **kwargs)

    @classmethod
    def open(cls, data_dir: os.PathLike, clock: SimulatedClock,
             **kwargs) -> "Engine":
        """Open an existing database; caller should run :meth:`recover`."""
        if not (Path(data_dir) / "data.db").exists():
            raise ConfigError(f"no database in {data_dir}")
        return cls(data_dir, clock, _create=False, **kwargs)

    def _bootstrap(self) -> None:
        catalog_root = self.buffer.new_page(LEAF)
        meta = self.buffer.get(0)
        meta.meta.update({"catalog_root": catalog_root.pgno,
                          "next_relation_id": 1})
        self.buffer.mark_dirty(meta)
        self._catalog_root = catalog_root.pgno
        self.buffer.flush_all()

    def _load_meta(self) -> None:
        meta = self.buffer.get(0)
        self._catalog_root = meta.meta["catalog_root"]

    def close(self) -> None:
        """Flush everything, mark a clean shutdown, release file handles."""
        if self.txns.active_count:
            raise TransactionStateError(
                "cannot close with active transactions")
        self.run_stamper()
        self.checkpoint()
        (self.data_dir / "clean_shutdown").touch()
        self.wal.close()
        self.pager.close()
        self.digest_pool.close()

    def was_clean_shutdown(self) -> bool:
        """Whether the previous incarnation closed cleanly.

        Consumes the marker: calling this after open tells the compliance
        layer whether crash recovery (START_RECOVERY on L) is needed.
        """
        marker = self.data_dir / "clean_shutdown"
        clean = marker.exists()
        marker.unlink(missing_ok=True)
        return clean

    # -- listener plumbing -------------------------------------------------------

    def add_split_listener(self,
                           listener: Callable[[SplitEvent], None]) -> None:
        """Subscribe to page splits of every relation (incl. the catalog)."""
        self._split_listeners.append(listener)

    def _count_split(self, event: SplitEvent) -> None:
        """Built-in listener: every split becomes a metric + trace event."""
        counter = self._c_splits_index if event.is_index \
            else self._c_splits_leaf
        counter.inc()
        self.obs.tracer.event("btree.split", pgno=event.old_pgno,
                              index=event.is_index)

    def _make_tree(self, info: RelationInfo):
        if info.use_tsb:
            tree = TSBTree(self.buffer, info.root_pgno,
                           self.config.page_size, info.relation_id,
                           self.split_threshold, now=self.clock.now,
                           resolve_start=self._resolved,
                           migrate=self._migrate_leaf,
                           assign_seq=self.assign_seq)
        else:
            tree = BPlusTree(self.buffer, info.root_pgno,
                             self.config.page_size, info.relation_id,
                             assign_seq=self.assign_seq)
        tree.split_listeners = self._split_listeners
        info.tree = tree
        return tree

    # -- transactions ----------------------------------------------------------------

    def begin(self) -> Transaction:
        """Start a transaction."""
        return self.txns.begin()

    def prepare(self, txn: Transaction, gid: str) -> None:
        """2PC phase one: durably prepare under the coordinator's gid."""
        self.txns.prepare(txn, gid)

    def commit(self, txn: Transaction) -> int:
        """Commit; returns the commit time."""
        commit_time = self.txns.commit(txn)
        self.last_commit_time = commit_time
        return commit_time

    def abort(self, txn: Transaction) -> None:
        """Roll back a transaction."""
        self.txns.abort(txn)

    class _TxnContext:
        def __init__(self, engine: "Engine"):
            self._engine = engine
            self.txn: Optional[Transaction] = None
            self.commit_time: Optional[int] = None

        def __enter__(self) -> Transaction:
            self.txn = self._engine.begin()
            return self.txn

        def __exit__(self, exc_type, exc, tb) -> bool:
            from ..txn.manager import TxnState
            if self.txn.state is not TxnState.ACTIVE:
                return False  # already resolved (e.g. explicit abort)
            if exc_type is None:
                self.commit_time = self._engine.commit(self.txn)
            else:
                self._engine.abort(self.txn)
            return False

    def transaction(self) -> "_TxnContext":
        """``with engine.transaction() as txn:`` — commit on success,
        abort on exception."""
        return Engine._TxnContext(self)

    def _after_commit(self, txn: Transaction, commit_time: int) -> None:
        work = [(op.relation_id, op.key, txn.txn_id, commit_time)
                for op in txn.writes]
        if self.config.eager_timestamping:
            self._apply_stamps(work)
            return
        self._pending_stamps.extend(work)
        # Salzberg-style timestamping-after-commit is lazy but not
        # unbounded: drain the queue opportunistically so old versions
        # become migratable/auditable without waiting for a checkpoint
        batch = self.config.stamper_batch
        if batch and len(self._pending_stamps) >= batch:
            self.run_stamper()

    def _undo_transaction(self, txn: Transaction) -> None:
        catalog_touched = False
        for op in reversed(txn.writes):
            info = self._tree_for_id(op.relation_id)
            try:
                info.remove(op.key, txn.txn_id)
            except KeyNotFoundError:
                pass  # never made it into the tree
            if op.relation_id == CATALOG_RELATION_ID:
                catalog_touched = True
        if catalog_touched:
            self._reload_relations()

    # -- lazy timestamping ---------------------------------------------------------

    def run_stamper(self) -> int:
        """Apply all pending commit-time stamps; returns how many."""
        work, self._pending_stamps = self._pending_stamps, []
        return self._apply_stamps(work)

    @property
    def pending_stamp_count(self) -> int:
        """Tuples awaiting their lazy commit-time stamp."""
        return len(self._pending_stamps)

    def _apply_stamps(self, work) -> int:
        done = 0
        for relation_id, key, txn_id, commit_time in work:
            tree = self._tree_for_id(relation_id)
            try:
                tree.stamp(key, txn_id, commit_time)
                done += 1
            except KeyNotFoundError:
                # already stamped (recovery re-stamp) or vacuumed
                pass
        self._c_stamps.inc(done)
        return done

    # -- DDL ---------------------------------------------------------------------------

    def create_relation(self, schema: Schema, use_tsb: Optional[bool] = None,
                        txn: Optional[Transaction] = None) -> RelationInfo:
        """Create a relation; its catalog tuple is written transactionally.
        """
        if use_tsb is None:
            use_tsb = self.worm_migration
        current = self._relations.get(schema.name)
        if current is not None:
            raise DuplicateKeyError(f"relation {schema.name!r} exists")
        meta = self.buffer.get(0)
        relation_id = meta.meta["next_relation_id"]
        meta.meta["next_relation_id"] = relation_id + 1
        self.buffer.mark_dirty(meta)
        root = self.buffer.new_page(LEAF)
        info = RelationInfo(schema.name, relation_id, root.pgno,
                            use_tsb, schema)
        self._make_tree(info)
        own_txn = txn is None
        if own_txn:
            txn = self.begin()
        try:
            payload = CATALOG_SCHEMA.encode_payload(info.catalog_row())
            self._write_version(txn, self._catalog_handle(),
                                encode_key((schema.name,)), payload,
                                eol=False, kind="insert")
            self._relations[schema.name] = info
            self._by_id[relation_id] = info
            if own_txn:
                self.commit(txn)
        except Exception:
            if own_txn:
                self.abort(txn)
            raise
        return info

    def drop_relation(self, name: str,
                      txn: Optional[Transaction] = None) -> None:
        """Drop a relation — an end-of-life catalog version; "its tuples …
        will be kept until they expire, just like any other data"."""
        self._require_relation(name)
        own_txn = txn is None
        if own_txn:
            txn = self.begin()
        try:
            self._write_version(txn, self._catalog_handle(),
                                encode_key((name,)), b"", eol=True,
                                kind="delete")
            if own_txn:
                self.commit(txn)
        except Exception:
            if own_txn:
                self.abort(txn)
            raise
        del self._by_id[self._relations[name].relation_id]
        del self._relations[name]

    def relation_names(self) -> List[str]:
        """Names of live relations."""
        return sorted(self._relations)

    def relation(self, name: str) -> RelationInfo:
        """Handle for a live relation."""
        return self._require_relation(name)

    def _catalog_handle(self) -> RelationInfo:
        info = RelationInfo("__catalog__", CATALOG_RELATION_ID,
                            self._catalog_root, False, CATALOG_SCHEMA)
        info.tree = self._catalog_tree
        return info

    def _require_relation(self, name: str) -> RelationInfo:
        try:
            return self._relations[name]
        except KeyError:
            raise RelationNotFoundError(f"no relation {name!r}") from None

    def _tree_for_id(self, relation_id: int):
        if relation_id == CATALOG_RELATION_ID:
            return self._catalog_tree
        info = self._by_id.get(relation_id)
        if info is None:
            raise RelationNotFoundError(
                f"no relation with id {relation_id}")
        return info.tree

    def _reload_relations(self) -> None:
        """Rebuild the relation map from the on-disk catalog."""
        self._relations = {}
        self._by_id = {}
        by_name: Dict[bytes, List[TupleVersion]] = {}
        for entry in self._catalog_tree.iter_entries():
            by_name.setdefault(entry.key, []).append(entry)
        for key, versions in by_name.items():
            visible = [v for v in versions if self._visible_to(v, None)]
            if not visible:
                continue
            last = visible[-1]
            if last.eol:
                continue
            row = CATALOG_SCHEMA.decode_payload(last.payload)
            info = RelationInfo.from_catalog_row(row)
            self._make_tree(info)
            self._relations[info.name] = info
            self._by_id[info.relation_id] = info

    # -- DML -----------------------------------------------------------------------------

    def insert(self, txn: Transaction, relation: str,
               row: Dict[str, Any]) -> None:
        """Insert a new tuple (fails if a live version exists)."""
        info = self._require_relation(relation)
        key = info.schema.encode_key_from_row(row)
        payload = info.schema.encode_payload(row)
        self._write_version(txn, info, key, payload, eol=False,
                            kind="insert")

    def insert_many(self, txn: Transaction, relation: str,
                    rows: List[Dict[str, Any]]) -> None:
        """Insert a batch of new tuples into one relation.

        Equivalent to one :meth:`insert` per row, but payloads are
        encoded through the schema's precompiled batch codec
        (:meth:`~repro.common.codec.Schema.encode_batch`), which skips
        the per-field dispatch of the scalar path.
        """
        info = self._require_relation(relation)
        payloads = info.schema.encode_batch(rows)
        for row, payload in zip(rows, payloads):
            key = info.schema.encode_key_from_row(row)
            self._write_version(txn, info, key, payload, eol=False,
                                kind="insert")

    def update(self, txn: Transaction, relation: str,
               row: Dict[str, Any]) -> None:
        """Write a new version of an existing tuple."""
        info = self._require_relation(relation)
        key = info.schema.encode_key_from_row(row)
        payload = info.schema.encode_payload(row)
        self._write_version(txn, info, key, payload, eol=False,
                            kind="update")

    def delete(self, txn: Transaction, relation: str,
               key_values: Tuple[Any, ...]) -> None:
        """Logically delete: writes an end-of-life version."""
        info = self._require_relation(relation)
        self._write_version(txn, info, encode_key(key_values), b"",
                            eol=True, kind="delete")

    def _write_version(self, txn: Transaction, info: RelationInfo,
                       key: bytes, payload: bytes, eol: bool,
                       kind: str) -> None:
        txn.require_active()
        self.txns.locks.acquire(txn.txn_id, (info.relation_id, key),
                                LockMode.EXCLUSIVE)
        last = info.tree.last_version(key)
        if last is not None:
            # An unstamped version's ``start`` is its writer's txn id.
            # If that writer has already committed, the version
            # logically carries the *commit time* — the lazy stamper
            # just has not applied it yet — and first-writer-wins must
            # test against it: comparing the raw txn id lets a
            # transaction that began before that commit write a second
            # version whose later stamp would break page sort order
            # (eager timestamping already rejects this schedule).
            last_time = self._resolved(last)
            if last_time is None:
                last_time = last.start
            if last_time >= txn.txn_id:
                if not last.stamped and last.start == txn.txn_id:
                    raise TransactionError(
                        f"txn {txn.txn_id} already wrote this "
                        f"{info.name} tuple; a transaction writes each "
                        "tuple at most once")
                raise TransactionAborted(
                    f"write-write conflict on {info.name}: a version "
                    f"committed after txn {txn.txn_id} began — abort "
                    "and retry")
        alive = (last is not None and not last.eol and
                 self._visible_to(last, txn))
        if kind == "insert" and alive:
            raise DuplicateKeyError(
                f"{info.name}: a live tuple with this key exists")
        if kind in ("update", "delete") and not alive:
            raise KeyNotFoundError(
                f"{info.name}: no live tuple with this key")
        record = TupleVersion(relation_id=info.relation_id, key=key,
                              start=txn.txn_id, stamped=False, eol=eol,
                              seq=0, payload=payload)
        self.wal.append(WalRecord(WalRecordType.INSERT, txn_id=txn.txn_id,
                                  tuple_bytes=record.to_bytes()))
        info.tree.insert(record)
        txn.writes.append(WriteOp(info.relation_id, key, txn.txn_id, eol))

    # -- reads -----------------------------------------------------------------------------

    def _resolved(self, version: TupleVersion) -> Optional[int]:
        if version.stamped:
            return version.start
        return self.txns.commit_times.get(version.start)

    def _visible_to(self, version: TupleVersion,
                    txn: Optional[Transaction]) -> bool:
        if version.stamped:
            return True
        if txn is not None and version.start == txn.txn_id:
            return True
        return version.start in self.txns.commit_times

    def get(self, relation: str, key_values: Tuple[Any, ...],
            txn: Optional[Transaction] = None,
            at: Optional[int] = None) -> Optional[Dict[str, Any]]:
        """Current (or as-of ``at``) row for a key, or None."""
        info = self._require_relation(relation)
        key = encode_key(key_values)
        if at is None:
            chosen = self._current_version(info, key, txn)
        else:
            chosen = self._version_as_of(info, key, at)
        if chosen is None or chosen.eol:
            return None
        return info.schema.decode_payload(chosen.payload)

    def _current_version(self, info: RelationInfo, key: bytes,
                         txn: Optional[Transaction]
                         ) -> Optional[TupleVersion]:
        for version in reversed(info.tree.versions(key)):
            if self._visible_to(version, txn):
                return version
        return None

    def _version_as_of(self, info: RelationInfo, key: bytes,
                       at: int) -> Optional[TupleVersion]:
        best: Optional[TupleVersion] = None
        best_time = -1
        candidates = list(info.tree.versions(key))
        for ref in self.histdir.lookup(info.relation_id, key):
            page = decode_hist_page(self.worm.read(ref.ref))
            candidates.extend(v for v in page if v.key == key)
        for version in candidates:
            resolved = self._resolved(version)
            if resolved is None or resolved > at:
                continue
            if resolved > best_time:
                best, best_time = version, resolved
        return best

    def versions(self, relation: str, key_values: Tuple[Any, ...],
                 include_history: bool = True) -> List[VersionView]:
        """Full version history of a key (live tree plus WORM pages)."""
        info = self._require_relation(relation)
        key = encode_key(key_values)
        raw = list(info.tree.versions(key))
        if include_history:
            for ref in self.histdir.lookup(info.relation_id, key):
                page = decode_hist_page(self.worm.read(ref.ref))
                raw.extend(v for v in page if v.key == key)
        views = [VersionView(start=self._resolved(v), eol=v.eol,
                             row=(None if v.eol else
                                  info.schema.decode_payload(v.payload)),
                             raw=v)
                 for v in raw]
        views.sort(key=lambda view: (view.start is None,
                                     view.start or 0, view.raw.start))
        return views

    def scan(self, relation: str, lo: Optional[Tuple[Any, ...]] = None,
             hi: Optional[Tuple[Any, ...]] = None,
             txn: Optional[Transaction] = None,
             at: Optional[int] = None
             ) -> List[Tuple[Tuple[Any, ...], Dict[str, Any]]]:
        """Visible rows with lo <= key < hi, as (key tuple, row) pairs."""
        info = self._require_relation(relation)
        lo_key = encode_key(lo) if lo is not None else b""
        hi_key = encode_key(hi) if hi is not None else None
        out: List[Tuple[Tuple[Any, ...], Dict[str, Any]]] = []
        entries = info.tree.range_scan(lo_key, hi_key)
        index = 0
        while index < len(entries):
            end = index
            while end < len(entries) and \
                    entries[end].key == entries[index].key:
                end += 1
            group = entries[index:end]
            index = end
            chosen: Optional[TupleVersion] = None
            if at is None:
                for version in reversed(group):
                    if self._visible_to(version, txn):
                        chosen = version
                        break
            else:
                chosen = self._best_as_of(info, group, at)
            if chosen is not None and not chosen.eol:
                out.append((decode_key(chosen.key),
                            info.schema.decode_payload(chosen.payload)))
        return out

    def _best_as_of(self, info: RelationInfo, group, at):
        key = group[0].key
        candidates = list(group)
        for ref in self.histdir.lookup(info.relation_id, key):
            page = decode_hist_page(self.worm.read(ref.ref))
            candidates.extend(v for v in page if v.key == key)
        best, best_time = None, -1
        for version in candidates:
            resolved = self._resolved(version)
            if resolved is None or resolved > at:
                continue
            if resolved > best_time:
                best, best_time = version, resolved
        return best

    def count_rows(self, relation: str) -> int:
        """Number of live (visible, non-eol) tuples."""
        return len(self.scan(relation))

    # -- physical erasure (vacuum support) ------------------------------------------------

    def physically_delete(self, relation_id: int, key: bytes,
                          start: int) -> TupleVersion:
        """Erase one stamped version from the live tree, WAL-logged.

        Used only by the shredding/vacuum machinery; ordinary deletes write
        end-of-life versions instead.
        """
        tree = self._tree_for_id(relation_id)
        self.wal.append(WalRecord(WalRecordType.PHYS_DELETE, txn_id=0,
                                  relation_id=relation_id, key=key,
                                  start=start))
        self.wal.flush()
        return tree.remove(key, start)

    # -- time-split migration ---------------------------------------------------------------

    def _migrate_leaf(self, event: TimeSplitEvent) -> str:
        """Persist a time split: WORM page, WAL record, directory entry.

        Ordering matters for crash safety: the WORM page is written first,
        then the TIME_SPLIT WAL record is flushed, then listeners (the
        compliance plugin's MIGRATE record) fire.  Recovery re-applies any
        TIME_SPLIT whose live-leaf trim never reached disk.
        """
        with self.obs.tracer.span("btree.time_split",
                                  relation=event.relation_id,
                                  pgno=event.leaf_pgno):
            ref = self.histdir.next_ref(event.relation_id)
            event.hist_ref = ref
            self.worm.create_file(ref, encode_hist_page(event.hist_entries),
                                  retention=self.worm_retention)
            self.wal.append(WalRecord(
                WalRecordType.TIME_SPLIT, relation_id=event.relation_id,
                pgno=event.leaf_pgno, hist_ref=ref,
                split_time=event.split_time))
            self.wal.flush()
            self.histdir.add(self._hist_entry(event, ref))
            for listener in self.migration_listeners:
                listener(event)
        self._c_time_splits.inc()
        return ref

    @staticmethod
    def _hist_entry(event: TimeSplitEvent, ref: str) -> HistPageRef:
        keys = [e.key for e in event.hist_entries]
        return HistPageRef(ref=ref, relation_id=event.relation_id,
                           leaf_pgno=event.leaf_pgno,
                           split_time=event.split_time,
                           lo_key=min(keys).hex(), hi_key=max(keys).hex(),
                           count=len(event.hist_entries))

    # -- checkpoint / crash / recovery ----------------------------------------------------------

    def checkpoint(self) -> int:
        """Flush WAL and all dirty pages (the paper's db_checkpoint).

        Returns the number of pages flushed.
        """
        with self.obs.tracer.span("engine.checkpoint") as span:
            self.wal.flush()
            flushed = self.buffer.flush_all()
            self.wal.append(WalRecord(WalRecordType.CHECKPOINT))
            self.wal.flush()
            span.set(pages=flushed)
        self._c_checkpoints.inc()
        return flushed

    def quiesce(self) -> None:
        """Drain for audit: no active txns, stamps applied, pages on disk."""
        if self.txns.active_count:
            raise TransactionStateError(
                f"{self.txns.active_count} transactions still active")
        self.run_stamper()
        self.checkpoint()

    def crash(self) -> None:
        """Simulate a process crash: volatile state vanishes un-flushed."""
        self.buffer.drop_all()
        self.wal.drop_buffer()
        self.wal.reopen()
        self.txns.crash_reset()
        self._pending_stamps.clear()

    def recover(self, on_outcomes: Optional[Callable] = None,
                resolve_in_doubt: Optional[Callable[[str], bool]] = None
                ) -> RecoveryReport:
        """Crash recovery: redo committed work, undo losers, re-stamp.

        ``on_outcomes`` (the compliance plugin) is invoked with the
        analysis plan after transaction outcomes are known but before any
        redo/undo is applied — the paper's "the compliance logger appends
        the corresponding ABORT and STAMP_TRANS records … the remainder of
        recovery proceeds as usual".

        ``resolve_in_doubt`` maps a 2PC coordinator gid to the commit
        decision (True = commit).  It is consulted for every prepared
        transaction with no durable outcome *before* outcomes are
        reported, so the compliance log sees the resolved truth.  When
        the WAL contains in-doubt transactions and no resolver is given,
        recovery refuses to guess — resolving them without the
        coordinator's journal could contradict a commit already applied
        on a sibling shard.

        Idempotent — running it on a cleanly shut-down database is a no-op.
        """
        with self.obs.tracer.span("engine.recover"):
            return self._recover(on_outcomes, resolve_in_doubt)

    def _resolve_in_doubt(self, plan,
                          resolve_in_doubt: Optional[Callable[[str], bool]]
                          ) -> None:
        in_doubt = plan.in_doubt
        if not in_doubt:
            return
        if resolve_in_doubt is None:
            raise RecoveryError(
                f"{len(in_doubt)} prepared transaction(s) in doubt "
                f"(gids {sorted(in_doubt.values())}); recovery needs the "
                "2PC coordinator's decisions — recover through the shard "
                "coordinator or pass resolve_in_doubt")
        for txn_id in sorted(in_doubt):
            gid = in_doubt[txn_id]
            if resolve_in_doubt(gid):
                commit_time = self.clock.tick()
                self.wal.append(WalRecord(WalRecordType.COMMIT,
                                          txn_id=txn_id,
                                          commit_time=commit_time))
                plan.committed[txn_id] = commit_time
            else:
                self.wal.append(WalRecord(WalRecordType.ABORT,
                                          txn_id=txn_id))
                plan.aborted.add(txn_id)
        self.wal.flush()

    def _recover(self, on_outcomes: Optional[Callable] = None,
                 resolve_in_doubt: Optional[Callable[[str], bool]] = None
                 ) -> RecoveryReport:
        plan = analyse(self.wal.iter_records())
        # resolve 2PC in-doubt transactions first: the report, the
        # compliance plugin, and the redo/undo pass must all see the
        # coordinator's decision, not the undecided state
        self._resolve_in_doubt(plan, resolve_in_doubt)
        report = RecoveryReport(committed=dict(plan.committed),
                                aborted=set(plan.aborted),
                                losers=set(plan.losers))
        self.txns.commit_times.update(plan.committed)
        if on_outcomes is not None:
            on_outcomes(plan)
        # a relation created shortly before the crash may have a root page
        # that exists in the file but was never flushed as a leaf
        for info in list(self._by_id.values()):
            self._ensure_root_initialised(info.root_pgno)
        # versions already migrated to WORM must not be re-inserted live
        migrated: Set[Tuple[int, bytes, int]] = set()
        for record in plan.records:
            if record.rtype == WalRecordType.TIME_SPLIT:
                for entry in decode_hist_page(self.worm.read(
                        record.hist_ref)):
                    migrated.add(entry.version_id())
        committed_inserts: List[Tuple[TupleVersion, int]] = []
        for record in plan.records:
            if record.rtype == WalRecordType.INSERT:
                version = TupleVersion.from_bytes(record.tuple_bytes)[0]
                outcome = plan.outcome_of(record.txn_id)
                if outcome == "committed":
                    commit_time = plan.committed[record.txn_id]
                    stamped_id = (version.relation_id, version.key,
                                  commit_time)
                    if stamped_id in migrated:
                        continue  # lives on a WORM historical page
                    if self._redo_insert(version, commit_time):
                        report.redone += 1
                    committed_inserts.append((version, commit_time))
                else:
                    if self._undo_insert(version):
                        report.undone += 1
            elif record.rtype == WalRecordType.PHYS_DELETE:
                if self._redo_phys_delete(record):
                    report.phys_deletes_reapplied += 1
            elif record.rtype == WalRecordType.TIME_SPLIT:
                if self._redo_time_split(record):
                    report.migrations_reapplied += 1
        # permanently abort losers so future recoveries agree
        for loser in sorted(plan.losers):
            self.wal.append(WalRecord(WalRecordType.ABORT, txn_id=loser))
        self.wal.flush()
        # re-stamp committed-but-unstamped tuples
        for version, commit_time in committed_inserts:
            tree = self._tree_for_id_or_none(version.relation_id)
            if tree is None:
                continue
            try:
                tree.stamp(version.key, version.start, commit_time)
                report.restamped += 1
            except KeyNotFoundError:
                pass  # already stamped, or vacuumed
        self._reload_relations()
        if plan.committed:
            self.last_commit_time = max(
                self.last_commit_time, max(plan.committed.values()))
        self.checkpoint()
        return report

    def _tree_for_id_or_none(self, relation_id: int):
        try:
            return self._tree_for_id(relation_id)
        except RelationNotFoundError:
            return None

    def _redo_insert(self, version: TupleVersion, commit_time: int) -> bool:
        tree = self._tree_for_id_or_none(version.relation_id)
        if tree is None:
            return False
        present = (tree.get_version(version.key, version.start) is not None
                   or tree.get_version(version.key, commit_time)
                   is not None)
        if present:
            applied = False
        else:
            tree.insert(version)
            applied = True
        if version.relation_id == CATALOG_RELATION_ID and not version.eol:
            self._register_from_catalog_tuple(version)
        return applied

    def _undo_insert(self, version: TupleVersion) -> bool:
        tree = self._tree_for_id_or_none(version.relation_id)
        if tree is None:
            return False
        try:
            tree.remove(version.key, version.start)
            return True
        except KeyNotFoundError:
            return False

    def _redo_phys_delete(self, record: WalRecord) -> bool:
        tree = self._tree_for_id_or_none(record.relation_id)
        if tree is None:
            return False
        try:
            tree.remove(record.key, record.start)
            return True
        except KeyNotFoundError:
            return False

    def _redo_time_split(self, record: WalRecord) -> bool:
        """Re-apply a migration whose live-leaf trim was lost in a crash."""
        hist_entries = decode_hist_page(self.worm.read(record.hist_ref))
        tree = self._tree_for_id_or_none(record.relation_id)
        applied = False
        if tree is not None:
            for entry in hist_entries:
                try:
                    tree.remove(entry.key, entry.start)
                    applied = True
                except KeyNotFoundError:
                    pass
        if not self.histdir.has_ref(record.hist_ref):
            event = TimeSplitEvent(relation_id=record.relation_id,
                                   leaf_pgno=record.pgno,
                                   split_time=record.split_time,
                                   hist_entries=hist_entries,
                                   hist_ref=record.hist_ref)
            self.histdir.add(self._hist_entry(event, record.hist_ref))
            for listener in self.migration_listeners:
                listener(event)
            applied = True
        return applied

    def _ensure_root_initialised(self, root_pgno: int) -> None:
        """Turn a never-flushed (still FREE) root page into an empty leaf.
        """
        root = self.buffer.get(root_pgno)
        if root.ptype == FREE:
            root.ptype = LEAF
            root.entries = []
            self.buffer.mark_dirty(root)

    def _register_from_catalog_tuple(self, version: TupleVersion) -> None:
        row = CATALOG_SCHEMA.decode_payload(version.payload)
        info = RelationInfo.from_catalog_row(row)
        if info.relation_id in self._by_id:
            return
        self._ensure_root_initialised(info.root_pgno)
        self._make_tree(info)
        self._relations[info.name] = info
        self._by_id[info.relation_id] = info
