"""The system catalog, stored as a transaction-time relation.

Schema changes are "handled just like any ordinary tuple insertion,
deletion, or update" (Section IV): every CREATE/DROP writes a new catalog
tuple version inside a transaction, so metadata history is itself audited
and term-immutable.  Dropping a relation only writes an end-of-life catalog
version — "its tuples … will be kept until they expire, just like any other
data".

The catalog relation has the fixed relation id 0 and its root page number
is recorded on the engine's meta page; a relation's own root page number
never changes (fixed-root splits), so catalog tuples need no updates as
trees grow.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from ..common.codec import Field, FieldType, Schema

CATALOG_RELATION_ID = 0

CATALOG_SCHEMA = Schema("__catalog__", [
    Field("name", FieldType.STR),
    Field("relation_id", FieldType.INT),
    Field("root_pgno", FieldType.INT),
    Field("use_tsb", FieldType.INT),      # 0/1: time-split tree?
    Field("schema_json", FieldType.STR),
], key_fields=["name"])


def schema_to_json(schema: Schema) -> str:
    """Serialise a Schema for storage in a catalog tuple."""
    return json.dumps({
        "name": schema.name,
        "fields": [[f.name, f.ftype.value] for f in schema.fields],
        "key": list(schema.key_fields),
    }, sort_keys=True)


def schema_from_json(raw: str) -> Schema:
    """Inverse of :func:`schema_to_json`."""
    blob = json.loads(raw)
    fields = [Field(name, FieldType(ftype)) for name, ftype in
              blob["fields"]]
    return Schema(blob["name"], fields, blob["key"])


@dataclass
class RelationInfo:
    """In-memory handle for one relation."""

    name: str
    relation_id: int
    root_pgno: int
    use_tsb: bool
    schema: Schema
    tree: object = field(default=None, repr=False)  # BPlusTree | TSBTree

    def catalog_row(self) -> dict:
        """The catalog tuple's column values for this relation."""
        return {
            "name": self.name,
            "relation_id": self.relation_id,
            "root_pgno": self.root_pgno,
            "use_tsb": int(self.use_tsb),
            "schema_json": schema_to_json(self.schema),
        }

    @classmethod
    def from_catalog_row(cls, row: dict) -> "RelationInfo":
        """Rebuild a handle from a decoded catalog tuple."""
        return cls(name=row["name"], relation_id=row["relation_id"],
                   root_pgno=row["root_pgno"],
                   use_tsb=bool(row["use_tsb"]),
                   schema=schema_from_json(row["schema_json"]))
