"""TPC-C: schema, deterministic loader, the five transactions, driver."""

from .driver import MIX, DriverResult, TPCCDriver
from .loader import TPCCLoader
from .schema import (ALL_SCHEMAS, CUSTOMER, DISTRICT, HISTORY, ITEM,
                     NEW_ORDER, ORDERS, ORDER_LINE, SCHEMAS_BY_NAME, STOCK,
                     TPCCScale, WAREHOUSE, last_name)
from .transactions import TPCCTransactions, TxnOutcome

__all__ = [
    "ALL_SCHEMAS", "CUSTOMER", "DISTRICT", "DriverResult", "HISTORY",
    "ITEM", "MIX", "NEW_ORDER", "ORDERS", "ORDER_LINE", "SCHEMAS_BY_NAME",
    "STOCK", "TPCCDriver", "TPCCLoader", "TPCCScale", "TPCCTransactions",
    "TxnOutcome", "WAREHOUSE", "last_name",
]
