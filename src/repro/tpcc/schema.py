"""TPC-C schema and scale parameters.

The nine TPC-C relations, keyed per the specification.  Two deliberate
adaptations for this engine (documented in DESIGN.md):

* the paper "modified the TPC-C schema to include [a tuple order number]
  for each relation" for the hash-page-on-read refinement — our engine
  carries the tuple order number inside every stored
  :class:`~repro.storage.record.TupleVersion`, so no schema change is
  needed;
* HISTORY has no primary key in the spec; we add the customary surrogate
  ``h_id`` since the transaction-time engine identifies tuples by key;
* STOCK's ten ``s_dist_XX`` padding columns are collapsed into one
  ``s_dist`` string of the same total width (they exist only to give the
  row its spec size).

:class:`TPCCScale` holds the population parameters.  The spec values
(3 000 customers/district, 100 000 items) are the defaults of
:meth:`TPCCScale.full`; tests and benchmarks scale them down with the same
ratios the paper's claims depend on (updates per tuple, hot-key skew).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..common.codec import Field, FieldType, Schema

F = Field
T = FieldType

WAREHOUSE = Schema("warehouse", [
    F("w_id", T.INT), F("w_name", T.STR), F("w_street_1", T.STR),
    F("w_city", T.STR), F("w_state", T.STR), F("w_zip", T.STR),
    F("w_tax", T.FLOAT), F("w_ytd", T.FLOAT),
], key_fields=["w_id"])

DISTRICT = Schema("district", [
    F("d_w_id", T.INT), F("d_id", T.INT), F("d_name", T.STR),
    F("d_street_1", T.STR), F("d_city", T.STR), F("d_state", T.STR),
    F("d_zip", T.STR), F("d_tax", T.FLOAT), F("d_ytd", T.FLOAT),
    F("d_next_o_id", T.INT),
], key_fields=["d_w_id", "d_id"])

CUSTOMER = Schema("customer", [
    F("c_w_id", T.INT), F("c_d_id", T.INT), F("c_id", T.INT),
    F("c_first", T.STR), F("c_middle", T.STR), F("c_last", T.STR),
    F("c_street_1", T.STR), F("c_city", T.STR), F("c_state", T.STR),
    F("c_zip", T.STR), F("c_phone", T.STR), F("c_since", T.INT),
    F("c_credit", T.STR), F("c_credit_lim", T.FLOAT),
    F("c_discount", T.FLOAT), F("c_balance", T.FLOAT),
    F("c_ytd_payment", T.FLOAT), F("c_payment_cnt", T.INT),
    F("c_delivery_cnt", T.INT), F("c_data", T.STR),
], key_fields=["c_w_id", "c_d_id", "c_id"])

HISTORY = Schema("history", [
    F("h_id", T.INT), F("h_c_id", T.INT), F("h_c_d_id", T.INT),
    F("h_c_w_id", T.INT), F("h_d_id", T.INT), F("h_w_id", T.INT),
    F("h_date", T.INT), F("h_amount", T.FLOAT), F("h_data", T.STR),
], key_fields=["h_id"])

NEW_ORDER = Schema("new_order", [
    F("no_w_id", T.INT), F("no_d_id", T.INT), F("no_o_id", T.INT),
], key_fields=["no_w_id", "no_d_id", "no_o_id"])

ORDERS = Schema("orders", [
    F("o_w_id", T.INT), F("o_d_id", T.INT), F("o_id", T.INT),
    F("o_c_id", T.INT), F("o_entry_d", T.INT), F("o_carrier_id", T.INT),
    F("o_ol_cnt", T.INT), F("o_all_local", T.INT),
], key_fields=["o_w_id", "o_d_id", "o_id"])

ORDER_LINE = Schema("order_line", [
    F("ol_w_id", T.INT), F("ol_d_id", T.INT), F("ol_o_id", T.INT),
    F("ol_number", T.INT), F("ol_i_id", T.INT),
    F("ol_supply_w_id", T.INT), F("ol_delivery_d", T.INT),
    F("ol_quantity", T.INT), F("ol_amount", T.FLOAT),
    F("ol_dist_info", T.STR),
], key_fields=["ol_w_id", "ol_d_id", "ol_o_id", "ol_number"])

ITEM = Schema("item", [
    F("i_id", T.INT), F("i_im_id", T.INT), F("i_name", T.STR),
    F("i_price", T.FLOAT), F("i_data", T.STR),
], key_fields=["i_id"])

STOCK = Schema("stock", [
    F("s_w_id", T.INT), F("s_i_id", T.INT), F("s_quantity", T.INT),
    F("s_dist", T.STR), F("s_ytd", T.INT), F("s_order_cnt", T.INT),
    F("s_remote_cnt", T.INT), F("s_data", T.STR),
], key_fields=["s_w_id", "s_i_id"])

ALL_SCHEMAS: List[Schema] = [WAREHOUSE, DISTRICT, CUSTOMER, HISTORY,
                             NEW_ORDER, ORDERS, ORDER_LINE, ITEM, STOCK]

SCHEMAS_BY_NAME: Dict[str, Schema] = {s.name: s for s in ALL_SCHEMAS}

#: customer last names are built from these syllables per the spec
LAST_NAME_SYLLABLES = ["BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE",
                       "ANTI", "CALLY", "ATION", "EING"]


def last_name(number: int) -> str:
    """Spec rule 4.3.2.3: a last name from three syllables of ``number``."""
    return (LAST_NAME_SYLLABLES[(number // 100) % 10] +
            LAST_NAME_SYLLABLES[(number // 10) % 10] +
            LAST_NAME_SYLLABLES[number % 10])


@dataclass
class TPCCScale:
    """Population parameters; all the ratios of the spec, scaled."""

    warehouses: int = 1
    districts_per_warehouse: int = 10
    customers_per_district: int = 30
    items: int = 100
    initial_orders_per_district: int = 10
    #: pad columns shrink proportionally so rows stay schema-shaped but
    #: small enough for laptop-scale pages
    pad: int = 8

    @classmethod
    def tiny(cls) -> "TPCCScale":
        """Smallest population that still exercises every code path."""
        return cls(warehouses=1, districts_per_warehouse=2,
                   customers_per_district=10, items=30,
                   initial_orders_per_district=5, pad=4)

    @classmethod
    def small(cls) -> "TPCCScale":
        """The default benchmark scale (seconds, not hours)."""
        return cls()

    @classmethod
    def medium(cls) -> "TPCCScale":
        """A heavier run for the headline figures."""
        return cls(warehouses=2, districts_per_warehouse=10,
                   customers_per_district=60, items=200,
                   initial_orders_per_district=20)

    @classmethod
    def full(cls) -> "TPCCScale":
        """The specification's per-warehouse cardinalities (slow in pure
        Python — provided for completeness)."""
        return cls(warehouses=10, districts_per_warehouse=10,
                   customers_per_district=3000, items=100_000,
                   initial_orders_per_district=3000, pad=24)

    def validate(self) -> None:
        if min(self.warehouses, self.districts_per_warehouse,
               self.customers_per_district, self.items) < 1:
            raise ValueError("all scale parameters must be >= 1")
