"""The TPC-C workload driver: standard mix, measurement, maintenance.

Runs the spec's transaction mix (45 % New-Order, 43 % Payment, 4 % each
Order-Status, Delivery, Stock-Level) against a database, advancing the
simulated clock, invoking the regret-interval maintenance the compliance
architecture requires, and measuring the wall-clock cost — the workload of
the paper's Section VII evaluation.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..common.clock import seconds
from .schema import TPCCScale
from .transactions import TPCCTransactions, TxnOutcome

#: the standard mix (weights sum to 100)
MIX = [("new_order", 45), ("payment", 43), ("order_status", 4),
       ("delivery", 4), ("stock_level", 4)]


@dataclass
class DriverResult:
    """Measurements from one workload run."""

    transactions: int = 0
    elapsed_seconds: float = 0.0
    committed: int = 0
    rolled_back: int = 0
    by_kind: Dict[str, int] = field(default_factory=dict)
    maintenance_runs: int = 0

    @property
    def tps(self) -> float:
        """Transactions per (wall-clock) second."""
        if self.elapsed_seconds == 0:
            return 0.0
        return self.transactions / self.elapsed_seconds


class TPCCDriver:
    """Executes a measured TPC-C run."""

    def __init__(self, db, scale: TPCCScale, seed: int = 7,
                 simulated_txn_gap: int = seconds(0.1)):
        self._db = db
        self._txns = TPCCTransactions(db, scale, seed=seed)
        self._rng = random.Random(seed ^ 0x5F5F)
        #: simulated time between transactions; makes regret intervals
        #: elapse at a realistic workload-relative rate
        self._gap = simulated_txn_gap

    def _pick(self) -> str:
        roll = self._rng.randint(1, 100)
        acc = 0
        for kind, weight in MIX:
            acc += weight
            if roll <= acc:
                return kind
        return MIX[-1][0]

    def run(self, transactions: int,
            progress_every: Optional[int] = None) -> DriverResult:
        """Run ``transactions`` mixed transactions; returns measurements.
        """
        result = DriverResult(transactions=transactions)
        started = time.perf_counter()
        for index in range(transactions):
            kind = self._pick()
            outcome: TxnOutcome = getattr(self._txns, kind)()
            result.by_kind[kind] = result.by_kind.get(kind, 0) + 1
            if outcome.committed:
                result.committed += 1
            else:
                result.rolled_back += 1
            self._db.clock.advance(self._gap)
            if self._db.maintenance():
                result.maintenance_runs += 1
            if progress_every and (index + 1) % progress_every == 0:
                print(f"  … {index + 1}/{transactions} transactions")
        result.elapsed_seconds = time.perf_counter() - started
        return result

    def run_series(self, transactions: int,
                   points: int = 10) -> "SeriesResult":
        """Run and record cumulative elapsed time at regular checkpoints.

        This is the shape Figure 3 plots: total run time as a function of
        the number of executed transactions.
        """
        step = max(1, transactions // points)
        series = []
        result = DriverResult(transactions=transactions)
        started = time.perf_counter()
        for index in range(transactions):
            kind = self._pick()
            outcome: TxnOutcome = getattr(self._txns, kind)()
            result.by_kind[kind] = result.by_kind.get(kind, 0) + 1
            if outcome.committed:
                result.committed += 1
            else:
                result.rolled_back += 1
            self._db.clock.advance(self._gap)
            if self._db.maintenance():
                result.maintenance_runs += 1
            if (index + 1) % step == 0 or index + 1 == transactions:
                series.append((index + 1,
                               time.perf_counter() - started))
        result.elapsed_seconds = time.perf_counter() - started
        return SeriesResult(result=result, series=series)


@dataclass
class SeriesResult:
    """A run plus its cumulative (transactions, seconds) checkpoints."""

    result: DriverResult
    series: list = field(default_factory=list)
