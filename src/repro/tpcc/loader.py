"""Deterministic TPC-C population.

Builds the initial database state: warehouses, districts, customers,
items, stock, and a backlog of delivered/undelivered orders, following the
cardinality ratios of the spec at whatever :class:`TPCCScale` dictates.
All randomness flows from one seeded :class:`random.Random`, so a given
(scale, seed) pair always produces the same database — the property the
benchmark comparisons rely on.
"""

from __future__ import annotations

import random
import string
from typing import Optional

from .schema import ALL_SCHEMAS, TPCCScale, last_name

_ROWS_PER_TXN = 50


class TPCCLoader:
    """Populates a database with the TPC-C initial state."""

    def __init__(self, db, scale: TPCCScale, seed: int = 42):
        scale.validate()
        self._db = db
        self.scale = scale
        self._rng = random.Random(seed)
        self._h_id = 0

    # -- helpers -------------------------------------------------------------

    def _alpha(self, lo: int, hi: Optional[int] = None) -> str:
        length = lo if hi is None else self._rng.randint(lo, hi)
        return "".join(self._rng.choices(string.ascii_lowercase, k=length))

    def _pad(self) -> str:
        return self._alpha(self.scale.pad)

    def _zip(self) -> str:
        return f"{self._rng.randint(0, 9999):04d}11111"

    # -- population ------------------------------------------------------------

    def load(self) -> None:
        """Create all nine relations and populate them."""
        for schema in ALL_SCHEMAS:
            self._db.create_relation(schema)
        self._load_items()
        for w_id in range(1, self.scale.warehouses + 1):
            self._load_warehouse(w_id)
        # backend-protocol spelling: works against in-process, remote,
        # and sharded backends alike (no engine access)
        self._db.checkpoint()

    def _batched(self, rows) -> None:
        batch = []
        for relation, row in rows:
            batch.append((relation, row))
            if len(batch) >= _ROWS_PER_TXN:
                self._flush_batch(batch)
                batch = []
        if batch:
            self._flush_batch(batch)

    def _flush_batch(self, batch) -> None:
        # consecutive same-relation runs go through the batched codec;
        # insertion order (and hence every tuple's page placement and
        # compliance record) is exactly that of the per-row loop
        with self._db.transaction() as txn:
            run_relation: str = ""
            run_rows: list = []
            for relation, row in batch:
                if relation != run_relation and run_rows:
                    self._db.insert_many(txn, run_relation, run_rows)
                    run_rows = []
                run_relation = relation
                run_rows.append(row)
            if run_rows:
                self._db.insert_many(txn, run_relation, run_rows)

    def _load_items(self) -> None:
        def rows():
            for i_id in range(1, self.scale.items + 1):
                original = self._rng.random() < 0.10
                data = self._pad() + ("ORIGINAL" if original else "")
                yield "item", {
                    "i_id": i_id,
                    "i_im_id": self._rng.randint(1, 10_000),
                    "i_name": self._alpha(6, 12),
                    "i_price": round(self._rng.uniform(1.0, 100.0), 2),
                    "i_data": data,
                }
        self._batched(rows())

    def _load_warehouse(self, w_id: int) -> None:
        scale = self.scale

        def rows():
            yield "warehouse", {
                "w_id": w_id, "w_name": self._alpha(6, 10),
                "w_street_1": self._alpha(8, 12),
                "w_city": self._alpha(6, 10), "w_state": self._alpha(2),
                "w_zip": self._zip(),
                "w_tax": round(self._rng.uniform(0.0, 0.2), 4),
                "w_ytd": 300_000.0,
            }
            for i_id in range(1, scale.items + 1):
                original = self._rng.random() < 0.10
                yield "stock", {
                    "s_w_id": w_id, "s_i_id": i_id,
                    "s_quantity": self._rng.randint(10, 100),
                    "s_dist": self._pad(), "s_ytd": 0, "s_order_cnt": 0,
                    "s_remote_cnt": 0,
                    "s_data": self._pad() + ("ORIGINAL" if original
                                             else ""),
                }
            for d_id in range(1, scale.districts_per_warehouse + 1):
                yield from self._district_rows(w_id, d_id)
        self._batched(rows())

    def _district_rows(self, w_id: int, d_id: int):
        scale = self.scale
        next_o_id = scale.initial_orders_per_district + 1
        yield "district", {
            "d_w_id": w_id, "d_id": d_id, "d_name": self._alpha(6, 10),
            "d_street_1": self._alpha(8, 12), "d_city": self._alpha(6, 10),
            "d_state": self._alpha(2), "d_zip": self._zip(),
            "d_tax": round(self._rng.uniform(0.0, 0.2), 4),
            "d_ytd": 30_000.0, "d_next_o_id": next_o_id,
        }
        for c_id in range(1, scale.customers_per_district + 1):
            bad_credit = self._rng.random() < 0.10
            yield "customer", {
                "c_w_id": w_id, "c_d_id": d_id, "c_id": c_id,
                "c_first": self._alpha(8, 12), "c_middle": "OE",
                "c_last": last_name(self._customer_name_number(c_id)),
                "c_street_1": self._alpha(8, 12),
                "c_city": self._alpha(6, 10),
                "c_state": self._alpha(2), "c_zip": self._zip(),
                "c_phone": f"{self._rng.randint(0, 10**10 - 1):010d}",
                "c_since": self._db.clock.now(),
                "c_credit": "BC" if bad_credit else "GC",
                "c_credit_lim": 50_000.0,
                "c_discount": round(self._rng.uniform(0.0, 0.5), 4),
                "c_balance": -10.0, "c_ytd_payment": 10.0,
                "c_payment_cnt": 1, "c_delivery_cnt": 0,
                "c_data": self._pad(),
            }
            self._h_id += 1
            yield "history", {
                "h_id": self._h_id, "h_c_id": c_id, "h_c_d_id": d_id,
                "h_c_w_id": w_id, "h_d_id": d_id, "h_w_id": w_id,
                "h_date": self._db.clock.now(), "h_amount": 10.0,
                "h_data": self._pad(),
            }
        # initial order backlog: the last third is undelivered
        permutation = list(range(1, scale.customers_per_district + 1))
        self._rng.shuffle(permutation)
        for o_id in range(1, scale.initial_orders_per_district + 1):
            c_id = permutation[(o_id - 1) % len(permutation)]
            undelivered = o_id > scale.initial_orders_per_district * 2 // 3
            ol_cnt = self._rng.randint(5, 15)
            yield "orders", {
                "o_w_id": w_id, "o_d_id": d_id, "o_id": o_id,
                "o_c_id": c_id, "o_entry_d": self._db.clock.now(),
                "o_carrier_id": 0 if undelivered
                else self._rng.randint(1, 10),
                "o_ol_cnt": ol_cnt, "o_all_local": 1,
            }
            if undelivered:
                yield "new_order", {"no_w_id": w_id, "no_d_id": d_id,
                                    "no_o_id": o_id}
            items = self._rng.sample(
                range(1, scale.items + 1), min(ol_cnt, scale.items))
            for number, i_id in enumerate(items, start=1):
                yield "order_line", {
                    "ol_w_id": w_id, "ol_d_id": d_id, "ol_o_id": o_id,
                    "ol_number": number, "ol_i_id": i_id,
                    "ol_supply_w_id": w_id,
                    "ol_delivery_d": 0 if undelivered
                    else self._db.clock.now(),
                    "ol_quantity": 5,
                    "ol_amount": 0.0 if undelivered
                    else round(self._rng.uniform(0.01, 9999.99), 2),
                    "ol_dist_info": self._pad(),
                }

    def _customer_name_number(self, c_id: int) -> int:
        """Spec: the first 1000 customers get sequential name numbers."""
        if c_id <= 1000:
            return c_id - 1
        return self._rng.randint(0, 999)
