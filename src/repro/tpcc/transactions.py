"""The five TPC-C transaction types against the compliant database.

Implements New-Order, Payment, Order-Status, Delivery, and Stock-Level
with the spec's input distributions (scaled), including New-Order's 1 %
rollback rule — which matters here beyond benchmarking, because aborted
transactions exercise the compliance log's ABORT/UNDO machinery.

One engine-imposed adaptation: a transaction writes each tuple at most
once (see :mod:`repro.temporal.engine`), so New-Order draws *distinct*
item ids per order rather than allowing the spec's rare duplicate line
items; the update counts the paper's figures depend on are unchanged.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict

from ..common.errors import TransactionAborted
from .schema import TPCCScale, last_name


@dataclass
class TxnOutcome:
    """Result of one executed transaction."""

    kind: str
    committed: bool
    detail: str = ""


class TPCCTransactions:
    """Executes TPC-C transactions with spec-shaped random inputs."""

    def __init__(self, db, scale: TPCCScale, seed: int = 7):
        self._db = db
        self.scale = scale
        self._rng = random.Random(seed)
        self._h_id = 1_000_000  # history surrogate keys, loader-disjoint

    # -- input generators -----------------------------------------------------

    def _warehouse(self) -> int:
        return self._rng.randint(1, self.scale.warehouses)

    def _district(self) -> int:
        return self._rng.randint(1, self.scale.districts_per_warehouse)

    def _customer(self) -> int:
        # NURand-ish skew: favour low customer ids
        scale = self.scale.customers_per_district
        a = self._rng.randint(1, scale)
        b = self._rng.randint(1, scale)
        return min(a, b)

    def _item(self) -> int:
        a = self._rng.randint(1, self.scale.items)
        b = self._rng.randint(1, self.scale.items)
        return min(a, b)  # hot items get more updates (STOCK skew)

    # -- New-Order (45%) ---------------------------------------------------------

    def new_order(self) -> TxnOutcome:
        """Place an order: the write-heaviest transaction."""
        db = self._db
        w_id, d_id = self._warehouse(), self._district()
        c_id = self._customer()
        ol_cnt = self._rng.randint(5, min(15, self.scale.items))
        item_ids = self._rng.sample(range(1, self.scale.items + 1),
                                    ol_cnt)
        rollback = self._rng.random() < 0.01  # spec 2.4.1.4

        txn = db.begin()
        try:
            warehouse = db.get("warehouse", (w_id,), txn=txn)
            district = db.get("district", (w_id, d_id), txn=txn)
            customer = db.get("customer", (w_id, d_id, c_id), txn=txn)
            o_id = district["d_next_o_id"]
            district["d_next_o_id"] = o_id + 1
            db.update(txn, "district", district)
            db.insert(txn, "orders", {
                "o_w_id": w_id, "o_d_id": d_id, "o_id": o_id,
                "o_c_id": c_id, "o_entry_d": db.clock.now(),
                "o_carrier_id": 0, "o_ol_cnt": ol_cnt, "o_all_local": 1,
            })
            db.insert(txn, "new_order", {"no_w_id": w_id, "no_d_id": d_id,
                                         "no_o_id": o_id})
            total = 0.0
            for number, i_id in enumerate(item_ids, start=1):
                if rollback and number == ol_cnt:
                    raise _UnusedItem()  # spec: invalid item => rollback
                item = db.get("item", (i_id,), txn=txn)
                stock = db.get("stock", (w_id, i_id), txn=txn)
                quantity = self._rng.randint(1, 10)
                if stock["s_quantity"] >= quantity + 10:
                    stock["s_quantity"] -= quantity
                else:
                    stock["s_quantity"] += 91 - quantity
                stock["s_ytd"] += quantity
                stock["s_order_cnt"] += 1
                db.update(txn, "stock", stock)
                amount = round(quantity * item["i_price"], 2)
                total += amount
                db.insert(txn, "order_line", {
                    "ol_w_id": w_id, "ol_d_id": d_id, "ol_o_id": o_id,
                    "ol_number": number, "ol_i_id": i_id,
                    "ol_supply_w_id": w_id, "ol_delivery_d": 0,
                    "ol_quantity": quantity, "ol_amount": amount,
                    "ol_dist_info": "d" * 8,
                })
            total *= (1 - customer["c_discount"]) * \
                (1 + warehouse["w_tax"] + district["d_tax"])
            db.commit(txn)
            return TxnOutcome("new_order", True, f"o_id={o_id}")
        except _UnusedItem:
            db.abort(txn)
            return TxnOutcome("new_order", False, "unused item rollback")
        except TransactionAborted as exc:
            db.abort(txn)
            return TxnOutcome("new_order", False, str(exc))

    # -- Payment (43%) --------------------------------------------------------------

    def payment(self) -> TxnOutcome:
        """Pay against a customer's balance (60 % selected by last name).
        """
        db = self._db
        w_id, d_id = self._warehouse(), self._district()
        amount = round(self._rng.uniform(1.0, 5000.0), 2)
        txn = db.begin()
        try:
            warehouse = db.get("warehouse", (w_id,), txn=txn)
            warehouse["w_ytd"] += amount
            db.update(txn, "warehouse", warehouse)
            district = db.get("district", (w_id, d_id), txn=txn)
            district["d_ytd"] += amount
            db.update(txn, "district", district)
            if self._rng.random() < 0.60:
                customer = self._by_last_name(txn, w_id, d_id)
            else:
                customer = db.get("customer", (w_id, d_id,
                                               self._customer()), txn=txn)
            customer["c_balance"] -= amount
            customer["c_ytd_payment"] += amount
            customer["c_payment_cnt"] += 1
            if customer["c_credit"] == "BC":
                blob = (f"{customer['c_id']},{d_id},{w_id},{amount};" +
                        customer["c_data"])
                customer["c_data"] = blob[:120]
            db.update(txn, "customer", customer)
            self._h_id += 1
            db.insert(txn, "history", {
                "h_id": self._h_id, "h_c_id": customer["c_id"],
                "h_c_d_id": d_id, "h_c_w_id": w_id, "h_d_id": d_id,
                "h_w_id": w_id, "h_date": db.clock.now(),
                "h_amount": amount, "h_data": "payment",
            })
            db.commit(txn)
            return TxnOutcome("payment", True)
        except TransactionAborted as exc:
            db.abort(txn)
            return TxnOutcome("payment", False, str(exc))

    def _by_last_name(self, txn, w_id: int, d_id: int) -> Dict:
        """Spec 2.5.2.2: midpoint of customers sharing a last name."""
        wanted = last_name(self._rng.randint(
            0, min(999, self.scale.customers_per_district - 1)))
        rows = self._db.scan("customer", lo=(w_id, d_id),
                             hi=(w_id, d_id + 1), txn=txn)
        matches = sorted((row for _, row in rows
                          if row["c_last"] == wanted),
                         key=lambda row: row["c_first"])
        if not matches:
            # fall back to a direct id (tiny scales may miss the name)
            return self._db.get("customer", (w_id, d_id,
                                             self._customer()), txn=txn)
        return matches[len(matches) // 2]

    # -- Order-Status (4%) --------------------------------------------------------------

    def order_status(self) -> TxnOutcome:
        """Read a customer's latest order and its lines (read-only)."""
        db = self._db
        w_id, d_id = self._warehouse(), self._district()
        c_id = self._customer()
        txn = db.begin()
        try:
            db.get("customer", (w_id, d_id, c_id), txn=txn)
            orders = db.scan("orders", lo=(w_id, d_id),
                             hi=(w_id, d_id + 1), txn=txn)
            mine = [row for _, row in orders if row["o_c_id"] == c_id]
            if mine:
                last = max(mine, key=lambda row: row["o_id"])
                db.scan("order_line", lo=(w_id, d_id, last["o_id"]),
                        hi=(w_id, d_id, last["o_id"] + 1), txn=txn)
            db.commit(txn)
            return TxnOutcome("order_status", True)
        except TransactionAborted as exc:
            db.abort(txn)
            return TxnOutcome("order_status", False, str(exc))

    # -- Delivery (4%) --------------------------------------------------------------------

    def delivery(self) -> TxnOutcome:
        """Deliver the oldest undelivered order of each district."""
        db = self._db
        w_id = self._warehouse()
        carrier = self._rng.randint(1, 10)
        txn = db.begin()
        try:
            for d_id in range(1, self.scale.districts_per_warehouse + 1):
                pending = db.scan("new_order", lo=(w_id, d_id),
                                  hi=(w_id, d_id + 1), txn=txn)
                if not pending:
                    continue
                o_id = min(row["no_o_id"] for _, row in pending)
                db.delete(txn, "new_order", (w_id, d_id, o_id))
                order = db.get("orders", (w_id, d_id, o_id), txn=txn)
                order["o_carrier_id"] = carrier
                db.update(txn, "orders", order)
                lines = db.scan("order_line", lo=(w_id, d_id, o_id),
                                hi=(w_id, d_id, o_id + 1), txn=txn)
                total = 0.0
                for _, line in lines:
                    line["ol_delivery_d"] = db.clock.now()
                    db.update(txn, "order_line", line)
                    total += line["ol_amount"]
                customer = db.get("customer",
                                  (w_id, d_id, order["o_c_id"]), txn=txn)
                customer["c_balance"] += total
                customer["c_delivery_cnt"] += 1
                db.update(txn, "customer", customer)
            db.commit(txn)
            return TxnOutcome("delivery", True)
        except TransactionAborted as exc:
            db.abort(txn)
            return TxnOutcome("delivery", False, str(exc))

    # -- Stock-Level (4%) -----------------------------------------------------------------

    def stock_level(self) -> TxnOutcome:
        """Count recently sold items below a stock threshold (read-only).
        """
        db = self._db
        w_id, d_id = self._warehouse(), self._district()
        threshold = self._rng.randint(10, 20)
        txn = db.begin()
        try:
            district = db.get("district", (w_id, d_id), txn=txn)
            next_o_id = district["d_next_o_id"]
            lines = db.scan("order_line",
                            lo=(w_id, d_id, max(1, next_o_id - 20)),
                            hi=(w_id, d_id, next_o_id), txn=txn)
            item_ids = {row["ol_i_id"] for _, row in lines}
            low = 0
            for i_id in item_ids:
                stock = db.get("stock", (w_id, i_id), txn=txn)
                if stock and stock["s_quantity"] < threshold:
                    low += 1
            db.commit(txn)
            return TxnOutcome("stock_level", True, f"low={low}")
        except TransactionAborted as exc:
            db.abort(txn)
            return TxnOutcome("stock_level", False, str(exc))


class _UnusedItem(Exception):
    """Signal for New-Order's 1% intentional rollback."""
