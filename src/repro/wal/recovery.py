"""Crash-recovery analysis over the WAL.

Pass 1 of recovery (*analysis*): classify every transaction seen in the
durable log as committed, aborted, or in-flight (a "loser" that the crash
interrupted — it must be rolled back).  Pass 2 (redo/undo application)
lives in the engine, which owns the B+-trees; see
:meth:`repro.temporal.engine.Engine.recover`.

The compliance side of recovery (START_RECOVERY, replayed ABORT and
STAMP_TRANS records on the compliance log, the consistency check between
the WAL tail on WORM and what recovery appended to L) lives in the
compliance plugin and auditor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Set

from ..common.errors import WalError
from .records import WalRecord, WalRecordType


@dataclass
class RecoveryPlan:
    """Outcome classification of every transaction in the durable WAL."""

    #: txn id -> commit time, for transactions whose COMMIT is durable
    committed: Dict[int, int] = field(default_factory=dict)
    #: transactions whose ABORT is durable
    aborted: Set[int] = field(default_factory=set)
    #: transactions with a BEGIN (or any op) but no durable outcome;
    #: recovery rolls these back
    losers: Set[int] = field(default_factory=set)
    #: txn id -> coordinator gid for transactions with a durable PREPARE
    #: (whatever their eventual outcome)
    prepared: Dict[int, str] = field(default_factory=dict)
    #: all durable records, in LSN order, for the application pass
    records: List[WalRecord] = field(default_factory=list)

    @property
    def in_doubt(self) -> Dict[int, str]:
        """txn id -> gid for prepared transactions with no outcome.

        These are *not* losers: a prepared transaction promised the 2PC
        coordinator it can commit, so only the coordinator's journaled
        decision (presumed abort when absent) may resolve it.
        """
        return {txn_id: gid for txn_id, gid in self.prepared.items()
                if txn_id not in self.committed
                and txn_id not in self.aborted}

    def outcome_of(self, txn_id: int) -> str:
        """'committed' | 'aborted' | 'loser' for a transaction id."""
        if txn_id in self.committed:
            return "committed"
        if txn_id in self.aborted:
            return "aborted"
        return "loser"


def analyse(records: Iterable[WalRecord]) -> RecoveryPlan:
    """Run the analysis pass over an iterable of durable WAL records.

    Every :class:`WalRecordType` is classified explicitly; a record type
    this pass does not know (someone added one without teaching
    recovery) raises :class:`WalError` rather than being silently
    misfiled as a participation record.
    """
    plan = RecoveryPlan()
    seen: Set[int] = set()
    for record in records:
        plan.records.append(record)
        if record.rtype in (WalRecordType.CHECKPOINT,
                            WalRecordType.TIME_SPLIT,
                            WalRecordType.PHYS_DELETE):
            # system operations: outside any transaction's outcome
            continue
        seen.add(record.txn_id)
        if record.rtype == WalRecordType.COMMIT:
            plan.committed[record.txn_id] = record.commit_time
        elif record.rtype == WalRecordType.ABORT:
            plan.aborted.add(record.txn_id)
        elif record.rtype == WalRecordType.PREPARE:
            plan.prepared[record.txn_id] = record.hist_ref
        elif record.rtype not in (WalRecordType.BEGIN,
                                  WalRecordType.INSERT):
            # BEGIN/INSERT only mark participation; anything else here
            # is a record type recovery was never taught to classify
            raise WalError(
                f"recovery has no analysis arm for WAL record type "
                f"{record.rtype!r}")
    plan.losers = (seen - set(plan.committed) - plan.aborted
                   - set(plan.in_doubt))
    return plan
