"""Write-ahead logging: records, the log with WORM tail, recovery analysis."""

from .log import TransactionLog
from .records import WalRecord, WalRecordType
from .recovery import RecoveryPlan, analyse

__all__ = ["RecoveryPlan", "TransactionLog", "WalRecord", "WalRecordType",
           "analyse"]
