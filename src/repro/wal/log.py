"""The transaction log (WAL) with its WORM-mirrored tail.

The log lives on ordinary read/write media, but the paper requires its tail
(the last two regret intervals, and the tail active at any crash) to be on
WORM until the next audit, so that an adversary cannot rewrite recent
history before recovery runs.  This implementation mirrors **every flushed
byte** of the WAL to an append-only WORM *epoch* file; the epoch is rotated
(sealed and replaced) at each audit, after which the old epoch becomes
deletable once its retention lapses.  Mirroring the whole epoch rather than
a sliding two-interval window is strictly stronger and much simpler; the
paper's space argument is unaffected because epochs die at audits.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Iterator, List, Optional

from ..common.errors import WalError
from ..worm import WormServer
from .records import WalRecord


class TransactionLog:
    """Append/flush/replay interface over the WAL file."""

    def __init__(self, path: "os.PathLike[str]", sync_writes: bool = False):
        self.path = Path(path)
        self._sync = sync_writes
        self._file = open(self.path, "ab")
        self._buffer: List[bytes] = []
        self._next_lsn = self._scan_existing() + 1
        self._flushed_lsn = self._next_lsn - 1
        self._worm: Optional[WormServer] = None
        self._worm_name: Optional[str] = None

    # -- WORM mirroring -----------------------------------------------------------

    def set_worm_mirror(self, worm: WormServer, name: str,
                        retention: Optional[int] = None) -> None:
        """Start mirroring flushed WAL bytes to a WORM append file."""
        if not worm.exists(name):
            worm.create_append_file(name, retention=retention)
        self._worm = worm
        self._worm_name = name

    @property
    def worm_mirror_name(self) -> Optional[str]:
        """Current WORM epoch file name (None when not mirroring)."""
        return self._worm_name

    # -- append / flush --------------------------------------------------------------

    def append(self, record: WalRecord) -> int:
        """Assign an LSN and buffer the record; returns the LSN.

        Buffered records are *not* durable until :meth:`flush` — a crash
        loses them, which is what the recovery tests exercise.
        """
        record.lsn = self._next_lsn
        self._next_lsn += 1
        self._buffer.append(record.to_bytes())
        return record.lsn

    def flush(self) -> int:
        """Write all buffered records to the log file (and WORM mirror)."""
        if self._buffer:
            blob = b"".join(self._buffer)
            self._buffer.clear()
            self._file.write(blob)
            self._file.flush()
            if self._sync:
                os.fsync(self._file.fileno())
            if self._worm is not None and self._worm_name is not None:
                # the mirror must always reflect exactly the durable WAL
                # tail (recovery cross-checks it against L), so it never
                # rides the WORM group-commit buffer
                self._worm.append(self._worm_name, blob, durable=True)
        self._flushed_lsn = self._next_lsn - 1
        return self._flushed_lsn

    def flush_to(self, lsn: int) -> None:
        """Ensure records up to ``lsn`` are durable (WAL-before-data)."""
        if lsn > self._flushed_lsn:
            self.flush()

    @property
    def flushed_lsn(self) -> int:
        """LSN of the last durable record."""
        return self._flushed_lsn

    @property
    def next_lsn(self) -> int:
        """LSN the next appended record will receive."""
        return self._next_lsn

    # -- crash / replay ------------------------------------------------------------

    def drop_buffer(self) -> None:
        """Discard unflushed records — part of the crash primitive."""
        self._buffer.clear()

    def reopen(self) -> None:
        """Re-open the file handle after a simulated crash."""
        if self._file.closed:
            self._file = open(self.path, "ab")
        self._next_lsn = self._scan_existing() + 1
        self._flushed_lsn = self._next_lsn - 1

    def iter_records(self) -> Iterator[WalRecord]:
        """Replay every durable record in LSN order.

        A torn final frame (crash mid-write) ends the iteration silently,
        like real recovery treating the tail as never-written.
        """
        data = self.path.read_bytes()
        offset = 0
        while offset < len(data):
            try:
                record, offset = WalRecord.from_bytes(data, offset)
            except WalError:
                return  # torn tail
            yield record

    def truncate(self) -> None:
        """Discard the on-disk log (legal only at a quiesced checkpoint).

        Called at audit time once every page is flushed and no transaction
        is active; the WORM mirror retains the full history for the auditor.
        """
        if self._buffer:
            raise WalError("cannot truncate with buffered records")
        self._file.close()
        self._file = open(self.path, "wb")
        self._file.flush()

    def close(self) -> None:
        """Close the underlying file handle."""
        if not self._file.closed:
            self._file.close()

    def _scan_existing(self) -> int:
        """Find the highest LSN already durable in the file."""
        last = 0
        if self.path.exists():
            data = self.path.read_bytes()
            offset = 0
            while offset < len(data):
                try:
                    record, offset = WalRecord.from_bytes(data, offset)
                except WalError:
                    break
                last = record.lsn
        return last
