"""Write-ahead-log record types.

The engine uses **logical** WAL records: inserts of tuple versions and
physical deletes (vacuum), plus transaction lifecycle and time-split
structure records.  Logical redo is idempotent here because every tuple
version is uniquely identified by (relation, key, start), which keeps crash
recovery simple and honest without full ARIES physical redo (see DESIGN.md
§6 for the accompanying atomic-flush-group rule).
"""

from __future__ import annotations

import enum
import struct
import zlib
from dataclasses import dataclass

from ..common.errors import WalError


class WalRecordType(enum.IntEnum):
    """Kinds of WAL records."""

    BEGIN = 1
    COMMIT = 2
    ABORT = 3
    #: a new tuple version was inserted (body carries its unstamped bytes)
    INSERT = 4
    #: a tuple version was physically erased (vacuum/shredding)
    PHYS_DELETE = 5
    CHECKPOINT = 6
    #: a time-split migrated a leaf's historical versions to WORM
    TIME_SPLIT = 7
    #: two-phase commit: the transaction is prepared — durably able to
    #: commit, holding its locks, awaiting the coordinator's decision.
    #: ``hist_ref`` carries the coordinator's global transaction id.
    PREPARE = 8


_BODY = struct.Struct("<QBqqHqiqHIH")
# lsn, rtype, txn_id, commit_time, relation_id, start, pgno, split_time,
# key_len, tuple_len, ref_len
_FRAME = struct.Struct("<II")  # body length, crc32


@dataclass
class WalRecord:
    """One WAL record; field use depends on ``rtype``."""

    rtype: WalRecordType
    txn_id: int = 0
    lsn: int = 0
    commit_time: int = 0
    #: INSERT: the serialised (unstamped) TupleVersion
    tuple_bytes: bytes = b""
    #: PHYS_DELETE / TIME_SPLIT: target relation
    relation_id: int = 0
    #: PHYS_DELETE: encoded key of the erased version
    key: bytes = b""
    #: PHYS_DELETE: start value of the erased version
    start: int = 0
    #: TIME_SPLIT: the live leaf that was split
    pgno: int = -1
    #: TIME_SPLIT: WORM file name of the historical page;
    #: PREPARE: the coordinator's global transaction id
    hist_ref: str = ""
    #: TIME_SPLIT: the split time t
    split_time: int = 0

    def to_bytes(self) -> bytes:
        """Serialise to a CRC-framed record."""
        ref = self.hist_ref.encode("utf-8")
        body = _BODY.pack(self.lsn, int(self.rtype), self.txn_id,
                          self.commit_time, self.relation_id, self.start,
                          self.pgno, self.split_time, len(self.key),
                          len(self.tuple_bytes), len(ref))
        body += self.key + self.tuple_bytes + ref
        return _FRAME.pack(len(body), zlib.crc32(body)) + body

    @classmethod
    def from_bytes(cls, data: bytes, offset: int) -> tuple["WalRecord", int]:
        """Parse one framed record; returns (record, next offset).

        Raises :class:`WalError` on CRC mismatch or truncation — the caller
        treats a bad trailing frame as the torn tail of a crash.
        """
        if offset + _FRAME.size > len(data):
            raise WalError("truncated WAL frame header")
        length, crc = _FRAME.unpack_from(data, offset)
        offset += _FRAME.size
        body = data[offset:offset + length]
        if len(body) != length:
            raise WalError("truncated WAL frame body")
        if zlib.crc32(body) != crc:
            raise WalError("WAL frame CRC mismatch")
        (lsn, rtype, txn_id, commit_time, relation_id, start, pgno,
         split_time, klen, tlen, rlen) = _BODY.unpack_from(body, 0)
        cursor = _BODY.size
        key = bytes(body[cursor:cursor + klen])
        cursor += klen
        tuple_bytes = bytes(body[cursor:cursor + tlen])
        cursor += tlen
        hist_ref = body[cursor:cursor + rlen].decode("utf-8")
        record = cls(rtype=WalRecordType(rtype), txn_id=txn_id, lsn=lsn,
                     commit_time=commit_time, tuple_bytes=tuple_bytes,
                     relation_id=relation_id, key=key, start=start,
                     pgno=pgno, hist_ref=hist_ref, split_time=split_time)
        return record, offset + length
