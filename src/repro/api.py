"""The unified database API: one typed backend interface.

:class:`ComplianceBackend` is the protocol every database-shaped object
in this tree speaks — the in-process :class:`~repro.core.database.
CompliantDB`, the remote :class:`~repro.server.client.ServerClient`, and
the :class:`~repro.shard.ShardedDB` coordinator (which both *consumes*
backends as its shards and *implements* the protocol itself, so shards
nest).  Before this module existed the two concrete classes exposed
near-identical but independently drifting method sets; the shard router
would have had to special-case its backends.  The protocol pins the
shared surface, and the conformance suite (``tests/test_api_conformance
.py``) runs one parametrized battery against every implementation.

Transaction handles are deliberately opaque (:data:`TxnHandle`): the
engine hands out live :class:`~repro.txn.manager.Transaction` objects,
the wire client hands out integer ids, and the coordinator hands out
:class:`~repro.shard.coordinator.DistributedTxn` envelopes.  Callers
must only pass a handle back to the backend that issued it.

Signature alignment: ``create_relation`` canonically takes a
:class:`~repro.common.codec.Schema`.  The wire client's historical
spelling — ``create_relation(name, fields, key)`` — is accepted by every
backend through :func:`coerce_relation_args` with a
:class:`DeprecationWarning`, so old callers keep working while new code
converges on the typed form.
"""

from __future__ import annotations

import warnings
from typing import (Any, ContextManager, Dict, List, Optional, Protocol,
                    Tuple, runtime_checkable)

from .common.codec import Field, FieldType, Schema
from .common.errors import ConfigError

#: an opaque transaction handle: a live ``Transaction`` (in-process), an
#: ``int`` (over the wire), or a ``DistributedTxn`` (sharded)
TxnHandle = Any

Row = Dict[str, Any]
Key = Tuple[Any, ...]


@runtime_checkable
class ComplianceBackend(Protocol):
    """The surface a compliant database presents, local or remote.

    Every method maps 1:1 onto the paper's architecture operations; the
    protocol exists so routers, loaders, and drivers can be written once
    against it and handed any implementation.
    """

    # -- transactions ------------------------------------------------------

    def begin(self) -> TxnHandle:
        """Start a transaction; returns an opaque handle."""
        ...

    def commit(self, txn: TxnHandle) -> int:
        """Commit; returns the commit time."""
        ...

    def abort(self, txn: TxnHandle) -> None:
        """Roll back a transaction."""
        ...

    def prepare(self, txn: TxnHandle, gid: str) -> None:
        """2PC phase one: durably prepare under the coordinator's gid."""
        ...

    def transaction(self) -> ContextManager[TxnHandle]:
        """Context manager: commit on success, abort on exception."""
        ...

    @property
    def halted(self) -> bool:
        """Whether transaction processing is halted (compliance halt)."""
        ...

    # -- DDL / DML ---------------------------------------------------------

    def create_relation(self, schema: Schema,
                        use_tsb: Optional[bool] = None) -> Any:
        """Create a relation from a :class:`Schema` (audited)."""
        ...

    def insert(self, txn: TxnHandle, relation: str, row: Row) -> None:
        """Insert a tuple."""
        ...

    def insert_many(self, txn: TxnHandle, relation: str,
                    rows: List[Row]) -> None:
        """Insert a batch of tuples into one relation."""
        ...

    def update(self, txn: TxnHandle, relation: str, row: Row) -> None:
        """Write a new version of an existing tuple."""
        ...

    def delete(self, txn: TxnHandle, relation: str, key: Key) -> None:
        """Logically delete a tuple (end-of-life version)."""
        ...

    def get(self, relation: str, key: Key, txn: Optional[TxnHandle] = None,
            at: Optional[int] = None) -> Optional[Row]:
        """Read a row, current or as of a past time."""
        ...

    def scan(self, relation: str, lo: Optional[Key] = None,
             hi: Optional[Key] = None, txn: Optional[TxnHandle] = None,
             at: Optional[int] = None) -> List[Tuple[Key, Row]]:
        """Range scan of visible rows, ordered by key."""
        ...

    # -- time / maintenance ------------------------------------------------

    def now(self) -> int:
        """The backend's current (simulated) time."""
        ...

    def maintenance(self, force: bool = False) -> bool:
        """Run regret-interval duties if due; True when work was done."""
        ...

    def checkpoint(self) -> None:
        """Apply pending lazy stamps and flush WAL + dirty pages."""
        ...

    def metrics(self) -> Dict[str, Any]:
        """Metrics snapshot (JSON-exporter shape)."""
        ...

    def close(self) -> None:
        """Release the backend (clean shutdown / disconnect)."""
        ...


def coerce_relation_args(schema: Any, args: Tuple[Any, ...],
                         fields: Optional[List[Tuple[str, str]]],
                         key: Optional[List[str]],
                         use_tsb: Optional[bool]
                         ) -> Tuple[Schema, Optional[bool]]:
    """Normalise ``create_relation`` arguments to ``(Schema, use_tsb)``.

    Canonical call shapes::

        create_relation(schema)
        create_relation(schema, use_tsb)

    Deprecated legacy spelling (the wire client's historical surface),
    accepted positionally or by keyword with a DeprecationWarning::

        create_relation(name, fields, key[, use_tsb])
        create_relation(name, fields=[...], key=[...])

    where ``fields`` are (name, type-string) pairs using the
    :class:`~repro.common.codec.FieldType` values.
    """
    if isinstance(schema, Schema):
        if fields is not None or key is not None:
            raise ConfigError(
                "create_relation: pass either a Schema or the legacy "
                "(name, fields, key) spelling, not both")
        if args:
            if len(args) > 1 or use_tsb is not None:
                raise ConfigError(
                    "create_relation(schema) takes at most one extra "
                    "argument (use_tsb)")
            use_tsb = args[0]
        return schema, use_tsb
    if not isinstance(schema, str):
        raise ConfigError(
            f"create_relation needs a Schema (got {type(schema).__name__})")
    name = schema
    extras = list(args)
    if extras:
        if fields is not None or key is not None:
            raise ConfigError(
                "create_relation: legacy fields/key given both "
                "positionally and by keyword")
        fields = extras.pop(0)
        key = extras.pop(0) if extras else None
        if extras:
            if use_tsb is not None:
                raise ConfigError("create_relation: use_tsb given twice")
            use_tsb = extras.pop(0)
        if extras:
            raise ConfigError("create_relation: too many arguments")
    if fields is None or key is None:
        raise ConfigError(
            "create_relation(name, ...) needs both fields and key")
    warnings.warn(
        "create_relation(name, fields, key) is deprecated; pass a "
        "Schema instead", DeprecationWarning, stacklevel=3)
    built = Schema(name,
                   [Field(str(fname), FieldType(str(ftype)))
                    for fname, ftype in fields],
                   key_fields=[str(k) for k in key])
    return built, use_tsb


__all__ = ["ComplianceBackend", "Key", "Row", "TxnHandle",
           "coerce_relation_args"]
