"""Schema-driven tuple codec and order-preserving key encoding.

The storage engine stores tuple payloads as opaque bytes inside slotted
pages; the B+-tree compares keys as raw bytes.  This module supplies the two
codecs that make that work:

* :class:`Schema` — a named, typed record layout.  ``encode_payload`` /
  ``decode_payload`` round-trip a field dict through a compact struct-based
  binary form.  Each schema precompiles its fixed-width field runs into
  one :class:`struct.Struct` at construction, so a row's INT/FLOAT
  columns pack and unpack in a single call instead of one dispatch per
  field; ``encode_batch`` / ``decode_batch`` run many rows through that
  layout (bulk loads, audit replay).
* :func:`encode_key` / :func:`decode_key` — an **order-preserving** encoding
  for composite keys, so that ``encode_key(a) < encode_key(b)`` iff ``a < b``
  under natural tuple ordering.  B+-tree pages can then compare keys with
  plain ``bytes`` comparison.

Supported field types are 64-bit ints, doubles, UTF-8 strings, and raw
bytes — enough for TPC-C and the Expiry relation.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Sequence, Tuple

from .errors import CodecError

_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")
_U32 = struct.Struct("<I")

_SIGN_OFFSET = 1 << 63  # maps signed 64-bit ints onto unsigned, order kept

_TAG_INT = 0x01
_TAG_STR = 0x02
_TAG_BYTES = 0x03
_TAG_FLOAT = 0x04

_TERMINATOR = b"\x00\x00"
_ESCAPED_ZERO = b"\x00\xff"


class FieldType(enum.Enum):
    """Type of a schema field."""

    INT = "int"
    FLOAT = "float"
    STR = "str"
    BYTES = "bytes"


@dataclass(frozen=True)
class Field:
    """A single named, typed column of a relation."""

    name: str
    ftype: FieldType


@dataclass(frozen=True)
class _Segment:
    """A run of consecutive columns sharing one decode strategy.

    ``packer`` is a precompiled :class:`struct.Struct` covering a run
    of fixed-width (INT/FLOAT) columns, or ``None`` for a single
    variable-width (STR/BYTES) column.
    """

    packer: "struct.Struct | None"
    fields: Tuple[Field, ...]


_FIXED_CODES = {FieldType.INT: "q", FieldType.FLOAT: "d"}


def _compile_segments(fields: Sequence[Field]) -> Tuple[_Segment, ...]:
    segments: List[_Segment] = []
    run: List[Field] = []
    for field in fields:
        if field.ftype in _FIXED_CODES:
            run.append(field)
            continue
        if run:
            segments.append(_Segment(struct.Struct(
                "<" + "".join(_FIXED_CODES[f.ftype] for f in run)),
                tuple(run)))
            run = []
        segments.append(_Segment(None, (field,)))
    if run:
        segments.append(_Segment(struct.Struct(
            "<" + "".join(_FIXED_CODES[f.ftype] for f in run)),
            tuple(run)))
    return tuple(segments)


class Schema:
    """A relation's column layout plus its primary-key column set.

    ``key_fields`` name the columns (in order) that form the primary key.
    The key columns are *also* stored in the payload, so a decoded payload is
    self-contained; the redundant key bytes are small and keep page parsing
    simple for the compliance plugin.
    """

    def __init__(self, name: str, fields: Sequence[Field],
                 key_fields: Sequence[str]):
        if not fields:
            raise CodecError(f"schema {name!r} has no fields")
        self.name = name
        self.fields: Tuple[Field, ...] = tuple(fields)
        self._by_name: Dict[str, Field] = {f.name: f for f in self.fields}
        if len(self._by_name) != len(self.fields):
            raise CodecError(f"schema {name!r} has duplicate field names")
        missing = [k for k in key_fields if k not in self._by_name]
        if missing:
            raise CodecError(f"schema {name!r}: key fields {missing} "
                             "are not columns")
        if not key_fields:
            raise CodecError(f"schema {name!r} has an empty primary key")
        self.key_fields: Tuple[str, ...] = tuple(key_fields)
        #: fixed-width runs precompiled into single Structs
        self._segments = _compile_segments(self.fields)
        self._field_names = tuple(f.name for f in self.fields)
        #: whole-row Struct when every column is fixed-width — the
        #: decode_batch fast lane unpacks such rows in one call
        self._fixed_struct = self._segments[0].packer \
            if len(self._segments) == 1 else None

    # -- payload ------------------------------------------------------------

    def encode_payload(self, values: Dict[str, Any]) -> bytes:
        """Encode a full row dict into compact bytes (schema field order).

        Fixed-width column runs go through the segment's precompiled
        Struct in one ``pack`` call; per-field validation (missing
        columns, type checks) is unchanged from the scalar path.
        """
        parts: List[bytes] = []
        name = self.name
        for seg in self._segments:
            packer = seg.packer
            if packer is None:
                field = seg.fields[0]
                try:
                    value = values[field.name]
                except KeyError:
                    raise CodecError(
                        f"{name}: missing field {field.name!r}") from None
                parts.append(_encode_field(field, value, name))
                continue
            args: List[Any] = []
            for field in seg.fields:
                try:
                    value = values[field.name]
                except KeyError:
                    raise CodecError(
                        f"{name}: missing field {field.name!r}") from None
                if field.ftype is FieldType.INT:
                    if not isinstance(value, int) or \
                            isinstance(value, bool):
                        raise CodecError(
                            f"{name}.{field.name}: expected int, "
                            f"got {type(value).__name__}")
                    args.append(value)
                else:
                    if not isinstance(value, (int, float)) or \
                            isinstance(value, bool):
                        raise CodecError(
                            f"{name}.{field.name}: expected float, "
                            f"got {type(value).__name__}")
                    args.append(float(value))
            parts.append(packer.pack(*args))
        return b"".join(parts)

    def decode_payload(self, data: bytes) -> Dict[str, Any]:
        """Decode bytes produced by :meth:`encode_payload` back to a dict."""
        values: Dict[str, Any] = {}
        offset = 0
        name = self.name
        for seg in self._segments:
            unpacker = seg.packer
            if unpacker is None:
                field = seg.fields[0]
                value, offset = _decode_field(field, data, offset, name)
                values[field.name] = value
                continue
            try:
                unpacked = unpacker.unpack_from(data, offset)
            except struct.error:
                # short payload: re-walk the run field by field so the
                # error names the exact column, like the scalar path
                for field in seg.fields:
                    value, offset = _decode_field(field, data, offset,
                                                  name)
                    values[field.name] = value
                continue
            for field, value in zip(seg.fields, unpacked):
                values[field.name] = value
            offset += unpacker.size
        if offset != len(data):
            raise CodecError(
                f"{self.name}: {len(data) - offset} trailing bytes")
        return values

    def encode_batch(self, rows: Sequence[Dict[str, Any]]) -> List[bytes]:
        """Encode many rows of this relation in one pass.

        Row-for-row identical to :meth:`encode_payload`; bulk writers
        (the TPC-C loader via ``Engine.insert_many``) use it to keep
        the whole batch on the precompiled segment layout.
        """
        encode = self.encode_payload
        return [encode(row) for row in rows]

    def decode_batch(self, payloads: Iterable[bytes]
                     ) -> List[Dict[str, Any]]:
        """Decode many payloads; rows equal :meth:`decode_payload`'s.

        Schemas whose columns are all fixed-width (the audit's Expiry
        policies, for instance) decode each row with a single
        whole-row ``unpack`` — one call, trailing bytes rejected by the
        exact-size check; anything irregular falls back to the scalar
        path for its precise error message.
        """
        if self._fixed_struct is not None:
            unpack = self._fixed_struct.unpack
            names = self._field_names
            out: List[Dict[str, Any]] = []
            for data in payloads:
                try:
                    out.append(dict(zip(names, unpack(data))))
                except struct.error:
                    out.append(self.decode_payload(data))
            return out
        decode = self.decode_payload
        return [decode(data) for data in payloads]

    # -- keys ---------------------------------------------------------------

    def key_of(self, values: Dict[str, Any]) -> Tuple[Any, ...]:
        """Extract the primary-key tuple from a row dict."""
        try:
            return tuple(values[k] for k in self.key_fields)
        except KeyError as exc:
            raise CodecError(
                f"{self.name}: row is missing key field {exc}") from None

    def encode_key_from_row(self, values: Dict[str, Any]) -> bytes:
        """Extract and order-preservingly encode a row's primary key."""
        return encode_key(self.key_of(values))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cols = ", ".join(f.name for f in self.fields)
        return f"Schema({self.name!r}, [{cols}], key={self.key_fields})"


def _encode_field(field: Field, value: Any, rel: str) -> bytes:
    if field.ftype is FieldType.INT:
        if not isinstance(value, int) or isinstance(value, bool):
            raise CodecError(f"{rel}.{field.name}: expected int, "
                             f"got {type(value).__name__}")
        return _I64.pack(value)
    if field.ftype is FieldType.FLOAT:
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise CodecError(f"{rel}.{field.name}: expected float, "
                             f"got {type(value).__name__}")
        return _F64.pack(float(value))
    if field.ftype is FieldType.STR:
        if not isinstance(value, str):
            raise CodecError(f"{rel}.{field.name}: expected str, "
                             f"got {type(value).__name__}")
        raw = value.encode("utf-8")
        return _U32.pack(len(raw)) + raw
    if field.ftype is FieldType.BYTES:
        if not isinstance(value, (bytes, bytearray)):
            raise CodecError(f"{rel}.{field.name}: expected bytes, "
                             f"got {type(value).__name__}")
        raw = bytes(value)
        return _U32.pack(len(raw)) + raw
    raise CodecError(f"unknown field type {field.ftype}")


def _decode_field(field: Field, data: bytes, offset: int,
                  rel: str) -> Tuple[Any, int]:
    try:
        if field.ftype is FieldType.INT:
            return _I64.unpack_from(data, offset)[0], offset + 8
        if field.ftype is FieldType.FLOAT:
            return _F64.unpack_from(data, offset)[0], offset + 8
        length = _U32.unpack_from(data, offset)[0]
        offset += 4
        raw = data[offset:offset + length]
        if len(raw) != length:
            raise CodecError(f"{rel}.{field.name}: truncated value")
        if field.ftype is FieldType.STR:
            return raw.decode("utf-8"), offset + length
        return bytes(raw), offset + length
    except struct.error as exc:
        raise CodecError(f"{rel}.{field.name}: truncated payload") from exc


# --------------------------------------------------------------------------
# Order-preserving key encoding
# --------------------------------------------------------------------------


def encode_key(values: Iterable[Any]) -> bytes:
    """Encode a tuple of key values so byte order equals tuple order.

    Ints map to big-endian unsigned with the sign offset applied; strings and
    bytes are zero-escaped and terminated so that prefixes sort first; floats
    use the standard sign-flip trick on their IEEE-754 bits.
    """
    parts: List[bytes] = []
    for value in values:
        if isinstance(value, bool):
            raise CodecError("bool is not a supported key type")
        if isinstance(value, int):
            parts.append(bytes([_TAG_INT]))
            parts.append((value + _SIGN_OFFSET).to_bytes(8, "big"))
        elif isinstance(value, str):
            parts.append(bytes([_TAG_STR]))
            parts.append(_escape(value.encode("utf-8")))
        elif isinstance(value, (bytes, bytearray)):
            parts.append(bytes([_TAG_BYTES]))
            parts.append(_escape(bytes(value)))
        elif isinstance(value, float):
            if value != value:  # NaN has no total order: reject
                raise CodecError("NaN is not a valid key component")
            parts.append(bytes([_TAG_FLOAT]))
            parts.append(_float_key_bits(value))
        else:
            raise CodecError(
                f"unsupported key component type {type(value).__name__}")
    return b"".join(parts)


def decode_key(data: bytes) -> Tuple[Any, ...]:
    """Invert :func:`encode_key`."""
    values: List[Any] = []
    offset = 0
    length = len(data)
    while offset < length:
        tag = data[offset]
        offset += 1
        if tag == _TAG_INT:
            if offset + 8 > length:
                raise CodecError("truncated int key component")
            values.append(
                int.from_bytes(data[offset:offset + 8], "big") - _SIGN_OFFSET)
            offset += 8
        elif tag in (_TAG_STR, _TAG_BYTES):
            raw, offset = _unescape(data, offset)
            values.append(raw.decode("utf-8") if tag == _TAG_STR else raw)
        elif tag == _TAG_FLOAT:
            if offset + 8 > length:
                raise CodecError("truncated float key component")
            values.append(_float_from_key_bits(data[offset:offset + 8]))
            offset += 8
        else:
            raise CodecError(f"unknown key tag 0x{tag:02x}")
    return tuple(values)


def _escape(raw: bytes) -> bytes:
    """Escape zero bytes and append the two-byte terminator."""
    return raw.replace(b"\x00", _ESCAPED_ZERO) + _TERMINATOR


def _unescape(data: bytes, offset: int) -> Tuple[bytes, int]:
    out = bytearray()
    length = len(data)
    while offset < length:
        byte = data[offset]
        if byte != 0x00:
            out.append(byte)
            offset += 1
            continue
        if offset + 1 >= length:
            raise CodecError("truncated escaped key component")
        follow = data[offset + 1]
        if follow == 0x00:
            return bytes(out), offset + 2
        if follow == 0xFF:
            out.append(0x00)
            offset += 2
            continue
        raise CodecError(f"bad escape sequence 0x00 0x{follow:02x}")
    raise CodecError("unterminated key component")


def _float_key_bits(value: float) -> bytes:
    bits = struct.unpack(">Q", struct.pack(">d", float(value)))[0]
    if bits & (1 << 63):
        bits ^= 0xFFFFFFFFFFFFFFFF  # negative: flip everything
    else:
        bits ^= 1 << 63  # positive: flip sign bit only
    return bits.to_bytes(8, "big")


def _float_from_key_bits(raw: bytes) -> float:
    bits = int.from_bytes(raw, "big")
    if bits & (1 << 63):
        bits ^= 1 << 63
    else:
        bits ^= 0xFFFFFFFFFFFFFFFF
    return struct.unpack(">d", struct.pack(">Q", bits))[0]
