"""Shared infrastructure: errors, simulated time, configuration, codecs."""

from .clock import (MICROS_PER_DAY, MICROS_PER_HOUR, MICROS_PER_MINUTE,
                    MICROS_PER_SECOND, MICROS_PER_YEAR, SimulatedClock, days,
                    minutes, seconds, years)
from .codec import Field, FieldType, Schema, decode_key, encode_key
from .config import (ComplianceConfig, ComplianceMode, DBConfig, EngineConfig,
                     DEFAULT_PAGE_SIZE)
from .errors import (AuditError, BufferError_, CodecError, ComplianceError,
                     ComplianceHaltError, ComplianceLogError, ConfigError,
                     DuplicateKeyError, KeyNotFoundError, LockConflictError,
                     PageFormatError, PageFullError, PageNotFoundError,
                     RecoveryError, ReproError, ShreddingError, SnapshotError,
                     StorageError, TransactionAborted, TransactionError,
                     TransactionStateError, WalError, WormError,
                     WormFileExistsError, WormFileNotFoundError,
                     WormViolationError)

__all__ = [
    "AuditError", "BufferError_", "CodecError", "ComplianceConfig",
    "ComplianceError", "ComplianceHaltError", "ComplianceLogError",
    "ComplianceMode", "ConfigError", "DBConfig", "DEFAULT_PAGE_SIZE",
    "DuplicateKeyError", "EngineConfig", "Field", "FieldType",
    "KeyNotFoundError", "LockConflictError", "MICROS_PER_DAY",
    "MICROS_PER_HOUR", "MICROS_PER_MINUTE", "MICROS_PER_SECOND",
    "MICROS_PER_YEAR", "PageFormatError", "PageFullError",
    "PageNotFoundError", "RecoveryError", "ReproError", "Schema",
    "ShreddingError", "SimulatedClock", "SnapshotError", "StorageError",
    "TransactionAborted", "TransactionError", "TransactionStateError",
    "WalError", "WormError", "WormFileExistsError", "WormFileNotFoundError",
    "WormViolationError", "days", "decode_key", "encode_key", "minutes",
    "seconds", "years",
]
