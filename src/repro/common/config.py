"""Configuration dataclasses for the storage engine and compliance layer."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from .clock import minutes, years
from .errors import ConfigError

DEFAULT_PAGE_SIZE = 4096
MIN_PAGE_SIZE = 256


class ComplianceMode(enum.Enum):
    """Which architecture variant a :class:`~repro.core.database.CompliantDB`
    runs in.

    * ``REGULAR`` — plain transaction-time DBMS; no compliance log.  This is
      the paper's "native Berkeley DB" baseline.
    * ``LOG_CONSISTENT`` — Section IV: NEW_TUPLE/STAMP_TRANS/ABORT/UNDO
      records go to the compliance log on WORM; snapshot-based audits.
    * ``HASH_ON_READ`` — Section V refinement: additionally hash every page
      read from disk (READ records) and log PAGE_SPLIT contents, enabling
      query-result verification at audit time.
    """

    REGULAR = "regular"
    LOG_CONSISTENT = "log-consistent"
    HASH_ON_READ = "hash-on-read"


@dataclass
class EngineConfig:
    """Storage-engine knobs (the Berkeley-DB-equivalent layer)."""

    page_size: int = DEFAULT_PAGE_SIZE
    buffer_pages: int = 256
    #: eagerly stamp commit times into tuples at commit, instead of the
    #: paper's lazy timestamping (transaction IDs fixed up later).
    eager_timestamping: bool = False
    #: fsync data/log files on flush.  Off by default: the reproduction runs
    #: on scratch dirs and simulated crashes never rely on the OS cache.
    sync_writes: bool = False
    #: simulated seconds per data-page I/O (see Pager.io_delay); the
    #: benchmarks use this to restore the paper's I/O-vs-CPU cost balance
    io_delay_seconds: float = 0.0
    #: run the lazy stamper opportunistically once this many stamps are
    #: pending (0 disables; checkpoints and audits always drain the queue)
    stamper_batch: int = 64

    def validate(self) -> None:
        if self.page_size < MIN_PAGE_SIZE:
            raise ConfigError(f"page_size must be >= {MIN_PAGE_SIZE}")
        if self.buffer_pages < 8:
            raise ConfigError("buffer_pages must be >= 8")


@dataclass
class ComplianceConfig:
    """Compliance-layer knobs (the paper's contribution)."""

    mode: ComplianceMode = ComplianceMode.LOG_CONSISTENT
    #: minimum time between a tuple's commit and any tampering attempt
    #: (Section II).  Dirty pages must reach disk — and hence their
    #: NEW_TUPLE records must reach WORM — within one regret interval.
    regret_interval: int = minutes(5)
    #: default retention period for WORM files (snapshots, logs).
    worm_retention: int = years(7)
    #: migrate historical pages of time-split B+-trees to WORM (Section VI).
    worm_migration: bool = False
    #: key-vs-time split threshold for time-split B+-trees (Section VI):
    #: if distinct-keys/tuples on a leaf is below the threshold, key-split,
    #: otherwise time-split.
    split_threshold: float = 0.5

    def validate(self) -> None:
        if self.regret_interval <= 0:
            raise ConfigError("regret_interval must be positive")
        if self.worm_retention <= 0:
            raise ConfigError("worm_retention must be positive")
        if not 0.0 <= self.split_threshold <= 1.0:
            raise ConfigError("split_threshold must be in [0, 1]")


@dataclass
class DBConfig:
    """Top-level configuration for a compliant database instance."""

    engine: EngineConfig = field(default_factory=EngineConfig)
    compliance: ComplianceConfig = field(default_factory=ComplianceConfig)

    def validate(self) -> None:
        self.engine.validate()
        self.compliance.validate()
