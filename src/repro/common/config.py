"""Configuration dataclasses for the storage engine and compliance layer."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, List

from .clock import minutes, years
from .errors import ConfigError

DEFAULT_PAGE_SIZE = 4096
MIN_PAGE_SIZE = 256

#: default latency histogram boundaries (seconds) — mirrors
#: ``repro.obs.registry.DEFAULT_LATENCY_BUCKETS`` (kept here so the
#: config layer does not import the obs layer)
DEFAULT_LATENCY_BUCKETS = (0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5,
                           1.0, 5.0)


class ComplianceMode(enum.Enum):
    """Which architecture variant a :class:`~repro.core.database.CompliantDB`
    runs in.

    * ``REGULAR`` — plain transaction-time DBMS; no compliance log.  This is
      the paper's "native Berkeley DB" baseline.
    * ``LOG_CONSISTENT`` — Section IV: NEW_TUPLE/STAMP_TRANS/ABORT/UNDO
      records go to the compliance log on WORM; snapshot-based audits.
    * ``HASH_ON_READ`` — Section V refinement: additionally hash every page
      read from disk (READ records) and log PAGE_SPLIT contents, enabling
      query-result verification at audit time.
    """

    REGULAR = "regular"
    LOG_CONSISTENT = "log-consistent"
    HASH_ON_READ = "hash-on-read"


@dataclass
class EngineConfig:
    """Storage-engine knobs (the Berkeley-DB-equivalent layer)."""

    page_size: int = DEFAULT_PAGE_SIZE
    buffer_pages: int = 256
    #: eagerly stamp commit times into tuples at commit, instead of the
    #: paper's lazy timestamping (transaction IDs fixed up later).
    eager_timestamping: bool = False
    #: fsync data/log files on flush.  Off by default: the reproduction runs
    #: on scratch dirs and simulated crashes never rely on the OS cache.
    sync_writes: bool = False
    #: simulated seconds per data-page I/O (see Pager.io_delay); the
    #: benchmarks use this to restore the paper's I/O-vs-CPU cost balance
    io_delay_seconds: float = 0.0
    #: run the lazy stamper opportunistically once this many stamps are
    #: pending (0 disables; checkpoints and audits always drain the queue)
    stamper_batch: int = 64
    #: worker threads in the engine's :class:`~repro.crypto.pool.
    #: DigestPool` (0 = compute every digest inline on the calling
    #: thread).  Pool threads only ever hash *independent* units —
    #: whole-page ``Hs`` chains, ADD-HASH chunks — so digests are
    #: byte-identical at any setting.
    hash_workers: int = 0

    def validate(self) -> None:
        if self.page_size < MIN_PAGE_SIZE:
            raise ConfigError(f"page_size must be >= {MIN_PAGE_SIZE}")
        if self.buffer_pages < 8:
            raise ConfigError("buffer_pages must be >= 8")
        if self.hash_workers < 0:
            raise ConfigError("hash_workers must be non-negative")


@dataclass
class ComplianceConfig:
    """Compliance-layer knobs (the paper's contribution)."""

    mode: ComplianceMode = ComplianceMode.LOG_CONSISTENT
    #: minimum time between a tuple's commit and any tampering attempt
    #: (Section II).  Dirty pages must reach disk — and hence their
    #: NEW_TUPLE records must reach WORM — within one regret interval.
    regret_interval: int = minutes(5)
    #: default retention period for WORM files (snapshots, logs).
    worm_retention: int = years(7)
    #: migrate historical pages of time-split B+-trees to WORM (Section VI).
    worm_migration: bool = False
    #: key-vs-time split threshold for time-split B+-trees (Section VI):
    #: if distinct-keys/tuples on a leaf is below the threshold, key-split,
    #: otherwise time-split.
    split_threshold: float = 0.5
    #: worker processes for the partitioned audit (Section VI audit
    #: cost); 0 = serial single-pass auditor, 1 = partitioned algorithm
    #: run in-process (useful for testing the partition logic)
    audit_workers: int = 0
    #: pages per final-state scan task handed to a worker
    audit_chunk_pages: int = 512
    #: compliance-log slices for the partitioned log scan; 0 = one
    #: slice per worker
    audit_log_slices: int = 0
    #: persist audit progress every N completed tasks so an interrupted
    #: audit resumes instead of restarting (0 disables checkpointing)
    audit_checkpoint_every: int = 8

    def validate(self) -> None:
        if self.regret_interval <= 0:
            raise ConfigError("regret_interval must be positive")
        if self.worm_retention <= 0:
            raise ConfigError("worm_retention must be positive")
        if not 0.0 <= self.split_threshold <= 1.0:
            raise ConfigError("split_threshold must be in [0, 1]")
        if self.audit_workers < 0:
            raise ConfigError("audit_workers must be non-negative")
        if self.audit_chunk_pages < 1:
            raise ConfigError("audit_chunk_pages must be positive")
        if self.audit_log_slices < 0:
            raise ConfigError("audit_log_slices must be non-negative")
        if self.audit_checkpoint_every < 0:
            raise ConfigError(
                "audit_checkpoint_every must be non-negative")


@dataclass
class ObsConfig:
    """Observability knobs (the ``repro.obs`` registry and tracer)."""

    #: collect metrics and traces.  When False the database wires in the
    #: shared no-op registry/tracer — the baseline the overhead
    #: benchmark compares against.
    enabled: bool = True
    #: ring-buffer capacity for finished tracing spans (oldest dropped
    #: first, with a drop counter)
    trace_capacity: int = 4096
    #: bucket upper bounds (seconds) for latency histograms such as
    #: ``audit_phase_seconds``
    latency_buckets: List[float] = field(
        default_factory=lambda: list(DEFAULT_LATENCY_BUCKETS))
    #: install the runtime concurrency sanitizer
    #: (:mod:`repro.analysis.sanitizer`) when this database comes up —
    #: process-wide and sticky, like the ``REPRO_SANITIZE`` env toggle
    sanitize: bool = False

    def validate(self) -> None:
        if self.trace_capacity < 0:
            raise ConfigError("trace_capacity must be non-negative")
        bounds = list(self.latency_buckets)
        if not bounds:
            raise ConfigError("latency_buckets must not be empty")
        if bounds != sorted(set(bounds)):
            raise ConfigError(
                "latency_buckets must be strictly increasing")


@dataclass
class DBConfig:
    """Top-level configuration for a compliant database instance.

    The single construction path: ``CompliantDB.create(path, config)``
    and ``open`` consume one of these (``compliance.mode`` selects the
    architecture variant; ``obs`` configures the metrics/tracing
    layer).
    """

    engine: EngineConfig = field(default_factory=EngineConfig)
    compliance: ComplianceConfig = field(default_factory=ComplianceConfig)
    obs: ObsConfig = field(default_factory=ObsConfig)

    @classmethod
    def for_mode(cls, mode: ComplianceMode, **compliance: Any) -> \
            "DBConfig":
        """Convenience: a default config running in ``mode``.

        Extra keyword arguments become :class:`ComplianceConfig`
        fields, e.g. ``DBConfig.for_mode(mode, worm_migration=True)``.
        """
        return cls(compliance=ComplianceConfig(mode=mode, **compliance))

    def validate(self) -> None:
        self.engine.validate()
        self.compliance.validate()
        self.obs.validate()
