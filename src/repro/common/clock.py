"""Simulated time for the compliant DBMS.

The paper's protocol is built around wall-clock intervals — the *regret
interval* (minutes), retention periods (years), audit periods (a year) — that
a test suite cannot wait out.  Every component in this reproduction therefore
takes its notion of "now" from a :class:`SimulatedClock` that the harness can
advance explicitly.

The WORM server's trusted "Compliance Clock" (cf. NetApp SnapLock) is modelled
by handing the *same* clock instance to the WORM server: the paper trusts the
WORM box's clock, so giving it the authoritative simulated time is faithful.

Times are integer **microseconds** since an arbitrary epoch.  Integer
microseconds keep arithmetic exact, sortable, and compactly serialisable.
"""

from __future__ import annotations

from ..common.errors import ConfigError

MICROS_PER_SECOND = 1_000_000
MICROS_PER_MINUTE = 60 * MICROS_PER_SECOND
MICROS_PER_HOUR = 60 * MICROS_PER_MINUTE
MICROS_PER_DAY = 24 * MICROS_PER_HOUR
MICROS_PER_YEAR = 365 * MICROS_PER_DAY


def seconds(n: float) -> int:
    """Convert seconds to clock microseconds."""
    return int(n * MICROS_PER_SECOND)


def minutes(n: float) -> int:
    """Convert minutes to clock microseconds."""
    return int(n * MICROS_PER_MINUTE)


def days(n: float) -> int:
    """Convert days to clock microseconds."""
    return int(n * MICROS_PER_DAY)


def years(n: float) -> int:
    """Convert (365-day) years to clock microseconds."""
    return int(n * MICROS_PER_YEAR)


class SimulatedClock:
    """A monotonic, manually advanced clock.

    Every call to :meth:`tick` advances time by ``tick_micros`` so that two
    successive events never share a timestamp — the auditor relies on commit
    times being *strictly* increasing (Section IV-B).  The harness can also
    jump forward with :meth:`advance` to simulate regret intervals, audit
    periods, or retention horizons elapsing.
    """

    def __init__(self, start: int = 1_000_000_000, tick_micros: int = 1):
        if start < 0 or tick_micros <= 0:
            raise ConfigError("clock start must be >= 0 and tick > 0")
        self._now = int(start)
        self._tick = int(tick_micros)

    def now(self) -> int:
        """Return the current time without advancing it."""
        return self._now

    def tick(self) -> int:
        """Advance by one tick and return the new time.

        Use this to stamp an *event*: two events stamped via ``tick`` are
        guaranteed distinct, strictly increasing times.
        """
        self._now += self._tick
        return self._now

    def advance(self, delta_micros: int) -> int:
        """Jump the clock forward by ``delta_micros``; returns the new time."""
        if delta_micros < 0:
            raise ConfigError("cannot move a monotonic clock backwards")
        self._now += int(delta_micros)
        return self._now

    def advance_to(self, when: int) -> int:
        """Advance the clock to an absolute time (no-op if already past it)."""
        if when > self._now:
            self._now = int(when)
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimulatedClock(now={self._now})"
