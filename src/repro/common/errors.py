"""Exception hierarchy for the compliant DBMS reproduction.

All library errors derive from :class:`ReproError` so callers can catch one
base class.  Sub-hierarchies mirror the subsystems: storage, WORM, WAL,
transactions, compliance, and auditing.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class CodecError(ReproError):
    """A payload could not be encoded or decoded against its schema."""


class ObsError(ReproError):
    """An observability-registry invariant was violated (name/kind/label
    conflicts, malformed histogram bucket boundaries, negative counter
    increments)."""


# --------------------------------------------------------------------------
# Storage engine
# --------------------------------------------------------------------------


class StorageError(ReproError):
    """Base class for storage-engine failures."""


class PageFormatError(StorageError):
    """A page's on-disk bytes are malformed (bad magic, offsets, slots)."""


class PageFullError(StorageError):
    """A record does not fit on a page; the caller must split the page."""


class PageNotFoundError(StorageError):
    """A page number does not exist in the backing file."""


class BufferError_(StorageError):
    """The buffer cache could not satisfy a request (e.g. all pages pinned)."""


class KeyNotFoundError(StorageError):
    """A lookup key is absent from a B+-tree."""


class DuplicateKeyError(StorageError):
    """An exact (key, start-time) entry already exists in a B+-tree."""


class RelationNotFoundError(StorageError):
    """The named relation does not exist (or has been dropped)."""


# --------------------------------------------------------------------------
# WORM server
# --------------------------------------------------------------------------


class WormError(ReproError):
    """Base class for WORM server failures."""


class WormViolationError(WormError):
    """An operation would violate term-immutability (overwrite, early delete).

    The simulated WORM server raises this instead of performing the
    operation, mirroring the paper's trusted compliance storage server that
    "never overwrites a file during its retention period".
    """


class WormFileExistsError(WormError):
    """Attempt to create a WORM file under a name that already exists."""


class WormFileNotFoundError(WormError):
    """The requested WORM file does not exist."""


# --------------------------------------------------------------------------
# WAL / transactions
# --------------------------------------------------------------------------


class WalError(ReproError):
    """Base class for write-ahead-log failures."""


class RecoveryError(WalError):
    """Crash recovery encountered an inconsistent log."""


class TransactionError(ReproError):
    """Base class for transaction-manager failures."""


class TransactionAborted(TransactionError):
    """The transaction was rolled back (deadlock, explicit abort, error)."""


class LockConflictError(TransactionError):
    """A lock could not be granted."""


class TransactionStateError(TransactionError):
    """Operation invalid for the transaction's current state."""


# --------------------------------------------------------------------------
# Compliance layer
# --------------------------------------------------------------------------


class ComplianceError(ReproError):
    """Base class for compliance-layer failures."""


class ComplianceLogError(ComplianceError):
    """The compliance log on WORM is malformed or cannot be written."""


class ComplianceHaltError(ComplianceError):
    """Transaction processing must halt: the compliance log is unwritable.

    Section IV of the paper: "If at any point we are unable to write to L,
    transaction processing must halt until the problem is fixed."
    """


class SnapshotError(ComplianceError):
    """A snapshot on WORM is missing, malformed, or its signature is bad."""


class AuditError(ComplianceError):
    """The audit itself could not be carried out (distinct from findings)."""


class ShreddingError(ComplianceError):
    """The vacuum/shredding protocol was violated."""


# --------------------------------------------------------------------------
# Compliance server (network front-end)
# --------------------------------------------------------------------------


class ServerError(ReproError):
    """Base class for compliance-server failures."""


class ServerBusyError(ServerError):
    """Admission control rejected a request: the single-writer queue is
    at its depth limit.  Retryable — the client should back off."""


class ServerShutdownError(ServerError):
    """The server is draining; no new requests are accepted."""


class ServerProtocolError(ServerError):
    """A wire frame was malformed (bad length prefix, oversized frame,
    truncated payload, or non-JSON content)."""


class ServerTimeoutError(ServerError):
    """No response arrived within the per-request receive timeout.

    The request may or may not have executed server-side, so a verbatim
    resend is **not** safe for handle-bound operations.  On a plain
    :class:`~repro.server.client.ServerClient` the byte stream is now
    desynchronised (a late response would be misread as the next
    request's), so the connection is closed; a
    :class:`~repro.server.pipeline.PipelinedClient` correlates by
    request id and stays usable — the late response is discarded.
    """

    def __init__(self, op: str, timeout: float) -> None:
        super().__init__(
            f"no response to {op!r} within {timeout}s")
        self.op = op
        self.timeout = timeout


class ServerRequestError(ServerError):
    """A request was rejected by the server (client-side surface).

    Carries the protocol error ``code`` and whether the failure is
    ``retryable`` (lock conflicts, backpressure) or fatal (compliance
    halt, bad request).
    """

    def __init__(self, code: str, message: str,
                 retryable: bool = False) -> None:
        super().__init__(message)
        self.code = code
        self.retryable = retryable


# --------------------------------------------------------------------------
# Shard coordinator (2PC across backends)
# --------------------------------------------------------------------------


class ShardError(ReproError):
    """Base class for shard-coordinator failures."""


class ShardCommitError(ShardError):
    """2PC phase two failed on some participant *after* the commit
    decision was journaled.  The global transaction **is committed**:
    recovering the failed shard against the coordinator's journal
    completes it deterministically.  Carries the gid and the per-shard
    failures so the operator knows which shards need recovery."""

    def __init__(self, gid: str,
                 failures: "dict[int, BaseException]") -> None:
        shards = ", ".join(f"shard {idx}: {exc!r}"
                           for idx, exc in sorted(failures.items()))
        super().__init__(
            f"2PC decision for {gid} is journaled COMMIT but phase two "
            f"failed on {len(failures)} shard(s) ({shards}); recover "
            "the shard(s) through the coordinator to complete it")
        self.gid = gid
        self.failures = failures
