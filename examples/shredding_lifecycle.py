#!/usr/bin/env python3
"""Shredding lifecycle: retention, expiry, auditable vacuuming (§VIII).

The Code of Virginia requires records containing social security numbers
to be shredded once expired; SOX requires them kept until then.  This
example walks a PII relation through that whole life:

retention policy → history accumulates → time passes → vacuum shreds
expired versions (SHREDDED records on WORM first) → audit verifies each
shred was legal → evidence itself disappears after the following audit.

Run:  python examples/shredding_lifecycle.py
"""

import tempfile
from pathlib import Path

from repro import (Auditor, ComplianceConfig, ComplianceMode, CompliantDB,
                   DBConfig, Field, FieldType, Schema, SimulatedClock,
                   minutes)

PII = Schema("employees", [
    Field("emp_id", FieldType.INT),
    Field("name", FieldType.STR),
    Field("ssn", FieldType.STR),
], key_fields=["emp_id"])

RETENTION = minutes(45)


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-shredding-"))
    clock = SimulatedClock()
    db = CompliantDB.create(
        workdir / "db", clock=clock,
        config=DBConfig(compliance=ComplianceConfig(
            mode=ComplianceMode.LOG_CONSISTENT,
            regret_interval=minutes(5))))
    db.create_relation(PII)
    db.set_retention("employees", RETENTION)
    print(f"retention policy for 'employees': "
          f"{db.shredder.retention_of('employees') // 60_000_000} minutes")

    # -- history accumulates ------------------------------------------------
    for emp in range(1, 6):
        with db.transaction() as txn:
            db.insert(txn, "employees", {"emp_id": emp,
                                         "name": f"employee-{emp}",
                                         "ssn": f"123-45-{emp:04d}"})
    db.pass_time(minutes(10))
    for emp in range(1, 6):
        with db.transaction() as txn:
            db.update(txn, "employees", {"emp_id": emp,
                                         "name": f"employee-{emp}",
                                         "ssn": "REDACTED"})
    with db.transaction() as txn:
        db.delete(txn, "employees", (5,))  # employee 5 leaves

    print(f"versions of employee 1: "
          f"{len(db.versions('employees', (1,)))} "
          "(original SSN still recoverable — that's the point of "
          "term-immutability)")

    # -- premature vacuum shreds nothing -------------------------------------
    report = db.vacuum()
    print(f"\nvacuum before expiry: {report.shredded_live} versions "
          "shredded (retention still running)")

    # -- time passes; the originals expire ------------------------------------
    db.pass_time(RETENTION + minutes(10))
    report = db.vacuum()
    print(f"vacuum after expiry: {report.shredded_live} versions "
          f"shredded across {report.relations}")
    history = db.versions("employees", (1,))
    print(f"employee 1 history now: {len(history)} version(s); "
          f"ssn={history[-1].row['ssn']}")
    print(f"employee 5 (deleted + expired): "
          f"{len(db.versions('employees', (5,)))} versions remain")

    # -- the audit verifies every shred was legal ------------------------------
    audit = Auditor(db).audit()
    print(f"\naudit: {'COMPLIANT' if audit.ok else 'FAILED'}; "
          f"{audit.shredded_verified} shreds verified against the Expiry "
          "policy in force at shred time")

    # -- the active records are never shredded ---------------------------------
    assert db.get("employees", (1,))["ssn"] == "REDACTED"
    print("\nactive records survive: current data is business state, "
          "only expired history is destroyed")


if __name__ == "__main__":
    main()
