#!/usr/bin/env python3
"""WORM migration and time travel: time-split B+-trees (Section VI).

A heavily updated relation is stored in a time-split B+-tree.  As leaves
overflow with superseded versions, time splits migrate history to
write-once pages on the WORM server — shrinking the auditable live set —
while temporal queries keep seeing every version, transparently reading
back through the WORM pages.

Run:  python examples/worm_migration_timetravel.py
"""

import tempfile
from pathlib import Path

from repro import (Auditor, ComplianceConfig, ComplianceMode, CompliantDB,
                   DBConfig, EngineConfig, Field, FieldType, Schema,
                   SimulatedClock, seconds)

PRICES = Schema("prices", [
    Field("sku", FieldType.INT),
    Field("price_cents", FieldType.INT),
], key_fields=["sku"])


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-migration-"))
    clock = SimulatedClock()
    db = CompliantDB.create(
        workdir / "db", clock=clock,
        config=DBConfig(
            engine=EngineConfig(page_size=1024, buffer_pages=64),
            compliance=ComplianceConfig(
                mode=ComplianceMode.LOG_CONSISTENT,
                worm_migration=True, split_threshold=0.6)))
    db.create_relation(PRICES)

    # a volatile price: hundreds of updates to a handful of SKUs ---------
    checkpoints = {}
    for sku in range(1, 5):
        with db.transaction() as txn:
            db.insert(txn, "prices", {"sku": sku, "price_cents": 1000})
    for round_no in range(1, 301):
        clock.advance(seconds(60))
        sku = 1 + (round_no % 4)
        with db.transaction() as txn:
            db.update(txn, "prices",
                      {"sku": sku, "price_cents": 1000 + round_no})
        db.engine.run_stamper()
        if round_no % 75 == 0:
            checkpoints[round_no] = clock.now()

    info = db.engine.relation("prices")
    live_pages = len(info.tree.leaf_pgnos())
    hist_pages = db.engine.histdir.page_count(info.relation_id)
    print(f"after 300 updates: {live_pages} live leaf page(s), "
          f"{hist_pages} historical page(s) migrated to WORM")
    print(f"time splits: {info.tree.time_splits}, "
          f"key splits: {info.tree.key_splits}")

    history = db.versions("prices", (2,))
    print(f"\nSKU 2 still has {len(history)} queryable versions "
          "(live + WORM combined)")

    # time travel straight through the WORM pages ------------------------
    print("\ntime travel:")
    for round_no, when in sorted(checkpoints.items()):
        sku = 1 + (round_no % 4)
        row = db.get("prices", (sku,), at=when)
        print(f"  as of round {round_no}: sku {sku} cost "
              f"{row['price_cents']} cents")

    # migrated pages are verified once, then exempt from audits ----------
    report = Auditor(db).audit()
    print(f"\naudit: {'COMPLIANT' if report.ok else 'FAILED'}; "
          f"{report.migrations_verified} migration(s) verified; "
          f"{report.final_tuples} live tuples scanned "
          f"(the {hist_pages} WORM pages are exempt)")


if __name__ == "__main__":
    main()
