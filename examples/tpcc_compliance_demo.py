#!/usr/bin/env python3
"""TPC-C under compliance: the paper's evaluation, end to end.

Loads a scaled TPC-C database in each of the three architectures, runs the
standard transaction mix, reports the throughput overhead of compliance
(the Fig. 3 claim), and finishes with a full audit of the compliant runs.

Run:  python examples/tpcc_compliance_demo.py [txns]
"""

import sys
import tempfile
from pathlib import Path

from repro import Auditor, ComplianceMode
from repro.bench import build_db, make_driver
from repro.tpcc import TPCCScale


def main() -> None:
    txns = int(sys.argv[1]) if len(sys.argv) > 1 else 200
    workdir = Path(tempfile.mkdtemp(prefix="repro-tpcc-"))
    scale = TPCCScale.tiny()
    results = {}

    for mode in (ComplianceMode.REGULAR, ComplianceMode.LOG_CONSISTENT,
                 ComplianceMode.HASH_ON_READ):
        print(f"\n=== {mode.value} ===")
        db = build_db(workdir / mode.value, mode, scale, buffer_pages=48)
        driver = make_driver(db, scale)
        result = driver.run(txns)
        results[mode] = result
        print(f"  {result.transactions} txns in "
              f"{result.elapsed_seconds:.2f}s "
              f"({result.tps:.0f} tps); {result.rolled_back} rollbacks; "
              f"mix={result.by_kind}")
        if mode is not ComplianceMode.REGULAR:
            # the live histogram the plugin maintains (no log re-parse)
            counts = db.plugin.stats.records
            interesting = {k: v for k, v in sorted(counts.items())}
            print(f"  compliance log: {db.clog.size() / 1024:.0f} KiB "
                  f"{interesting}")
            report = Auditor(db).audit()
            print(f"  audit: {'COMPLIANT' if report.ok else 'FAILED'} — "
                  f"{report.final_tuples} tuples, "
                  f"{report.log_records} log records, "
                  f"{report.read_hashes_checked} read hashes checked")

    base = results[ComplianceMode.REGULAR].elapsed_seconds
    print("\n=== overhead vs regular (paper: ~10% / ~20%) ===")
    for mode in (ComplianceMode.LOG_CONSISTENT,
                 ComplianceMode.HASH_ON_READ):
        overhead = results[mode].elapsed_seconds / base - 1
        print(f"  {mode.value}: {100 * overhead:+.1f}%")


if __name__ == "__main__":
    main()
