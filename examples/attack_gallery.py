#!/usr/bin/env python3
"""The attack gallery: every threat of Section II, and who catches it.

Walks through the paper's threat model attack by attack, against both the
log-consistent architecture and the hash-page-on-read refinement, printing
a detection matrix.  The interesting row is *state reversion*: tamper,
let a victim query the lie, revert before the audit — invisible to the
basic architecture, caught by hash-page-on-read.

Run:  python examples/attack_gallery.py
"""

import tempfile
from pathlib import Path

from repro import (Auditor, ComplianceMode, CompliantDB, DBConfig, Field,
                   FieldType, Schema, minutes)
from repro.core import Adversary

ACCOUNTS = Schema("accounts", [
    Field("acct", FieldType.INT),
    Field("owner", FieldType.STR),
    Field("balance", FieldType.INT),
], key_fields=["acct"])


def fresh_database(path: Path, mode: ComplianceMode):
    db = CompliantDB.create(path, DBConfig.for_mode(mode))
    db.create_relation(ACCOUNTS)
    for acct in range(50):
        with db.transaction() as txn:
            db.insert(txn, "accounts", {"acct": acct, "owner": "alice",
                                        "balance": acct * 100})
    for acct in range(0, 50, 5):
        with db.transaction() as txn:
            db.update(txn, "accounts", {"acct": acct, "owner": "alice",
                                        "balance": 7})
    mala = Adversary(db)
    mala.settle()
    return db, mala


def attack_shred(db, mala):
    """Threat 1: retroactively erase a committed record."""
    mala.shred_tuple("accounts", (13,))


def attack_alter(db, mala):
    """Threat 1: quietly rewrite history in place."""
    mala.alter_tuple("accounts", (7,),
                     {"acct": 7, "owner": "mala", "balance": 10**9})


def attack_backdate(db, mala):
    """Threat 2: forge a record that 'always existed'."""
    mala.backdate_insert("accounts",
                         {"acct": 4444, "owner": "ghost", "balance": 1},
                         start=db.clock.now() - minutes(120))


def attack_index(db, mala):
    """Fig. 2: make the index lie so lookups miss a tuple."""
    mala.swap_leaf_entries("accounts")


def attack_reversion(db, mala):
    """Section V's motivating attack: tamper, serve queries, revert."""
    handle = mala.begin_state_reversion(
        "accounts", (7,), {"acct": 7, "owner": "mala",
                           "balance": 123456})
    print(f"      victim reads balance "
          f"{db.get('accounts', (7,))['balance']} (a lie)")
    handle.revert()
    db.engine.buffer.drop_all()


def attack_hidden_crash(db, mala):
    """Crash the DBMS and recover without the compliance routines."""
    db.clock.advance(minutes(40))
    mala.crash_and_silent_recovery()
    with db.transaction() as txn:
        db.insert(txn, "accounts", {"acct": 900, "owner": "x",
                                    "balance": 1})


ATTACKS = [attack_shred, attack_alter, attack_backdate, attack_index,
           attack_reversion, attack_hidden_crash]


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-gallery-"))
    modes = [ComplianceMode.LOG_CONSISTENT, ComplianceMode.HASH_ON_READ]
    width = max(len(a.__doc__.splitlines()[0]) for a in ATTACKS)
    print(f"{'attack':<{width}} | {'log-consistent':<16} | hash-on-read")
    print("-" * (width + 36))
    for attack in ATTACKS:
        label = attack.__doc__.splitlines()[0]
        cells = []
        for mode in modes:
            db, mala = fresh_database(
                workdir / f"{attack.__name__}-{mode.value}", mode)
            attack(db, mala)
            report = Auditor(db).audit(rotate=False)
            cells.append("DETECTED" if not report.ok else "missed")
        print(f"{label:<{width}} | {cells[0]:<16} | {cells[1]}")
    print("\nNote the asymmetry on state reversion: that gap is exactly "
          "why the paper\nintroduces the hash-page-on-read refinement "
          "(finite query verification interval).")


if __name__ == "__main__":
    main()
