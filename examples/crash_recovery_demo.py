#!/usr/bin/env python3
"""Crash recovery under audit: the Section IV-B machinery, live.

Crashes the DBMS at awkward moments — uncommitted data stolen to disk,
committed data not yet flushed — and shows auditable recovery putting the
world right: losers rolled back, committed work redone, START_RECOVERY and
outcome records on the compliance log, and a clean audit at the end.
Finishes with the contrast: an adversary who recovers *silently* is
caught.

Run:  python examples/crash_recovery_demo.py
"""

import tempfile
from pathlib import Path

from repro import (Auditor, ComplianceMode, CompliantDB, DBConfig, Field,
                   FieldType, Schema, minutes)
from repro.core import Adversary

TRADES = Schema("trades", [
    Field("trade_id", FieldType.INT),
    Field("symbol", FieldType.STR),
    Field("qty", FieldType.INT),
], key_fields=["trade_id"])


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-crash-"))
    db = CompliantDB.create(
        workdir / "db", DBConfig.for_mode(ComplianceMode.HASH_ON_READ))
    db.create_relation(TRADES)

    for trade in range(20):
        with db.transaction() as txn:
            db.insert(txn, "trades", {"trade_id": trade, "symbol": "ACME",
                                      "qty": trade})
    print("20 trades committed (pages still dirty in the cache)")

    # an in-flight transaction whose dirty page reaches disk (steal) ------
    loser = db.begin()
    db.insert(loser, "trades", {"trade_id": 999, "symbol": "EVIL",
                                "qty": 1})
    db.engine.wal.flush()
    db.engine.checkpoint()
    print("an uncommitted trade was stolen to disk…")

    db.crash()
    print("\n*** CRASH ***\n")

    report = db.recover()
    print("recovery:")
    print(f"  committed txns honoured: {len(report.committed)}")
    print(f"  losers rolled back:      {sorted(report.losers)}")
    print(f"  tuples redone:           {report.redone}")
    print(f"  tuples un-done:          {report.undone}")
    print(f"  lazily re-stamped:       {report.restamped}")
    assert db.get("trades", (7,)) is not None
    assert db.get("trades", (999,)) is None
    print("\nall committed trades present; the loser trade is gone")

    counts = db.clog.record_counts()
    print(f"compliance log after recovery: "
          f"START_RECOVERY={counts.get('START_RECOVERY', 0)}, "
          f"ABORT={counts.get('ABORT', 0)}, "
          f"PAGE_RESET={counts.get('PAGE_RESET', 0)}")

    audit = Auditor(db).audit()
    print(f"audit after honest recovery: "
          f"{'COMPLIANT' if audit.ok else 'FAILED'}")

    # the dishonest variant ------------------------------------------------
    print("\nnow the adversary crashes the DBMS and recovers silently…")
    mala = Adversary(db)
    db.clock.advance(minutes(40))
    mala.crash_and_silent_recovery()
    with db.transaction() as txn:
        db.insert(txn, "trades", {"trade_id": 1000, "symbol": "ACME",
                                  "qty": 1})
    audit = Auditor(db).audit(rotate=False)
    print(f"audit after silent recovery: "
          f"{'COMPLIANT' if audit.ok else 'TAMPERING DETECTED'}")
    for finding in audit.findings[:3]:
        print(f"  finding: {finding}")


if __name__ == "__main__":
    main()
