#!/usr/bin/env python3
"""Quickstart: a regulatory-compliant ledger in five minutes.

Creates a term-immutable database, runs business transactions, shows
time travel, lets an adversary tamper with the files, and watches the
audit catch it.

Run:  python examples/quickstart.py
"""

import tempfile
from pathlib import Path

from repro import (Auditor, ComplianceMode, CompliantDB, DBConfig, Field,
                   FieldType, Schema, minutes)
from repro.core import Adversary

LEDGER = Schema("ledger", [
    Field("entry_id", FieldType.INT),
    Field("account", FieldType.STR),
    Field("amount", FieldType.INT),
], key_fields=["entry_id"])


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-quickstart-"))
    print(f"workspace: {workdir}\n")

    # 1. create a compliant database (log-consistent architecture) -------
    db = CompliantDB.create(
        workdir / "db",
        DBConfig.for_mode(ComplianceMode.LOG_CONSISTENT))
    db.create_relation(LEDGER)
    print("created a log-consistent compliant database")
    print(f"  compliance log on WORM: {db.clog.name}")

    # 2. ordinary transactions ------------------------------------------
    with db.transaction() as txn:
        db.insert(txn, "ledger", {"entry_id": 1, "account": "ops",
                                  "amount": 1_000})
        db.insert(txn, "ledger", {"entry_id": 2, "account": "r&d",
                                  "amount": 2_500})
    t_before_update = db.clock.now()
    db.clock.advance(minutes(1))
    with db.transaction() as txn:
        db.update(txn, "ledger", {"entry_id": 1, "account": "ops",
                                  "amount": 1_750})
    print(f"\ncurrent balance of entry 1: "
          f"{db.get('ledger', (1,))['amount']}")

    # 3. time travel: it is a transaction-time database -----------------
    old = db.get("ledger", (1,), at=t_before_update)
    print(f"entry 1 as of before the update: {old['amount']}")
    history = db.versions("ledger", (1,))
    print(f"entry 1 has {len(history)} recorded versions "
          "(nothing is ever overwritten)")

    # 4. a clean audit ---------------------------------------------------
    report = Auditor(db).audit()
    print(f"\nfirst audit: {'COMPLIANT' if report.ok else 'FAILED'} "
          f"(epoch {report.epoch} -> {report.new_epoch}); "
          f"{report.final_tuples} tuples verified")

    # 5. the CEO reaches the point of regret -----------------------------
    with db.transaction() as txn:
        db.insert(txn, "ledger", {"entry_id": 666,
                                  "account": "offshore",
                                  "amount": 9_999_999})
    mala = Adversary(db)
    mala.settle()
    mala.shred_tuple("ledger", (666,))
    print("\nMala edited the database file and erased the offshore entry…")

    # 6. the next audit tells on her --------------------------------------
    report = Auditor(db).audit()
    print(f"second audit: {'COMPLIANT' if report.ok else 'TAMPERING'}")
    for finding in report.findings:
        print(f"  finding: {finding}")


if __name__ == "__main__":
    main()
