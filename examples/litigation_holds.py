#!/usr/bin/env python3
"""Litigation holds: subpoenaed evidence cannot be shredded (Section IX).

"Evidence … can be subpoenaed and used against the company. Further, the
evidence cannot be destroyed once it has been subpoenaed."  This example
walks the full arc: records expire → a subpoena arrives → a hold freezes
them past expiry → a rogue operator shreds them anyway → the audit
convicts → the hold is released → lawful shredding resumes.

Run:  python examples/litigation_holds.py
"""

import tempfile
from pathlib import Path

from repro import (Auditor, ComplianceConfig, ComplianceMode, CompliantDB,
                   DBConfig, Field, FieldType, Schema, SimulatedClock,
                   minutes)
from repro.common.codec import encode_key

EMAILS = Schema("emails", [
    Field("msg_id", FieldType.INT),
    Field("sender", FieldType.STR),
    Field("body", FieldType.STR),
], key_fields=["msg_id"])

RETENTION = minutes(30)


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-holds-"))
    clock = SimulatedClock()
    db = CompliantDB.create(
        workdir / "db", clock=clock,
        config=DBConfig(compliance=ComplianceConfig(
            mode=ComplianceMode.LOG_CONSISTENT,
            regret_interval=minutes(5))))
    db.create_relation(EMAILS)
    db.set_retention("emails", RETENTION)

    for msg in range(1, 6):
        with db.transaction() as txn:
            db.insert(txn, "emails", {"msg_id": msg, "sender": "cfo",
                                      "body": f"routine memo {msg}"})
    db.pass_time(minutes(2))
    for msg in range(1, 6):
        with db.transaction() as txn:
            db.update(txn, "emails", {"msg_id": msg, "sender": "cfo",
                                      "body": "RECALLED"})
    print("5 emails written, then recalled (history retained)")

    # the subpoena arrives: a hold on message 3 -------------------------
    hold_id = db.place_hold("emails", key=(3,),
                            case_ref="SDNY-grand-jury-0417")
    print(f"litigation hold #{hold_id} placed on message 3")

    # retention lapses: lawful vacuuming spares the held message ---------
    db.pass_time(RETENTION + minutes(10))
    report = db.vacuum()
    print(f"\nvacuum after expiry: {report.shredded_live} version(s) "
          "shredded")
    print(f"message 3 history: {len(db.versions('emails', (3,)))} "
          "version(s) — protected by the hold")
    print(f"message 4 history: {len(db.versions('emails', (4,)))} "
          "version(s) — expired history lawfully shredded")
    assert Auditor(db).audit().ok
    print("audit: COMPLIANT (the hold was honoured)")

    # a rogue operator destroys the evidence anyway ----------------------
    info = db.engine.relation("emails")
    db.engine.run_stamper()
    victim = info.tree.versions(encode_key((3,)))[0]
    db.plugin.log_shredded(victim, 0, clock.now())
    db.engine.physically_delete(info.relation_id, victim.key,
                                victim.start)
    print("\na rogue operator shredded the subpoenaed original…")
    audit = Auditor(db).audit(rotate=False)
    print(f"audit: {'COMPLIANT' if audit.ok else 'VIOLATION'}")
    for finding in audit.findings:
        if finding.code == "shred-under-hold":
            print(f"  finding: {finding}")


if __name__ == "__main__":
    main()
